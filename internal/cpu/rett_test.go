package cpu

import (
	"errors"
	"testing"

	"liquidarch/internal/isa"
)

// TestRettWithTrapsEnabledIsIllegal: executing RETT outside a trap
// handler (ET=1) traps as an illegal instruction.
func TestRettWithTrapsEnabledIsIllegal(t *testing.T) {
	trapped := uint8(0)
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpRETT, Rs1: isa.L2, UseImm: true}),
	)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	run(t, c, 1)
	if trapped != TrapIllegalInst {
		t.Errorf("trap = %#x, want illegal instruction", trapped)
	}
}

// TestRettUnalignedTargetIsErrorMode: a misaligned RETT target inside
// a handler (ET=0) freezes the processor.
func TestRettUnalignedTargetIsErrorMode(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.L2, 0x801)), // bogus (odd) return address base
		enc(t, isa.Inst{Op: isa.OpSLL, Rd: isa.L2, Rs1: isa.L2, UseImm: true, Imm: 1}), // 0x1002
		enc(t, isa.Inst{Op: isa.OpRETT, Rs1: isa.L2, UseImm: true}),
	)
	c.psr &^= PSRET // pretend we are in a handler
	run(t, c, 2)
	err := c.Step()
	var em *ErrorMode
	if !errors.As(err, &em) || em.TT != TrapAlignment {
		t.Fatalf("err = %v, want alignment error mode", err)
	}
}

// TestRettIntoInvalidWindowIsErrorMode: RETT that would rotate into a
// WIM-invalid window cannot trap (ET=0) and freezes.
func TestRettIntoInvalidWindowIsErrorMode(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpWRWIM, Rs1: isa.G0, UseImm: true, Imm: 1 << 1}),
		enc(t, movImm(isa.L2, 0x100)),
		enc(t, isa.Inst{Op: isa.OpSLL, Rd: isa.L2, Rs1: isa.L2, UseImm: true, Imm: 4}), // 0x1000
		enc(t, isa.Inst{Op: isa.OpRETT, Rs1: isa.L2, UseImm: true}),
	)
	c.psr &^= PSRET
	run(t, c, 3) // wrwim, mov, sll (no traps needed)
	err := c.Step()
	var em *ErrorMode
	if !errors.As(err, &em) || em.TT != TrapWindowUnderflow {
		t.Fatalf("err = %v, want window-underflow error mode", err)
	}
}

// TestRettRestoresPreviousSupervisor: PS flows back into S.
func TestRettRestoresPreviousSupervisor(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.L2, 0x101)),
		enc(t, isa.Inst{Op: isa.OpSLL, Rd: isa.L2, Rs1: isa.L2, UseImm: true, Imm: 4}), // 0x1010
		enc(t, isa.Inst{Op: isa.OpJMPL, Rd: isa.G0, Rs1: isa.L2, UseImm: true}),
		enc(t, isa.Inst{Op: isa.OpRETT, Rs1: isa.L2, UseImm: true, Imm: 4}),
	)
	// Simulate trap context with PS=0 (came from user mode).
	c.psr &^= PSRET | PSRPS
	run(t, c, 4)
	if c.PSR()&PSRS != 0 {
		t.Error("S not restored from PS=0")
	}
	if c.PSR()&PSRET == 0 {
		t.Error("ET not set by rett")
	}
}

// TestAnnulledSlotOfTakenConditional: a taken conditional branch with
// the annul bit set still executes its delay slot (only untaken
// conditionals annul).
func TestAnnulledSlotOfTakenConditional(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpSUBcc, Rd: isa.G0, Rs1: isa.G0, UseImm: true, Imm: 0}), // Z=1
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondE, Annul: true, Imm: 3}),
		enc(t, movImm(isa.O0, 1)),   // delay slot: executes (taken)
		enc(t, movImm(isa.O0+1, 9)), // skipped
		enc(t, movImm(isa.O0+2, 2)), // target
	)
	run(t, c, 4)
	if c.Reg(isa.O0) != 1 {
		t.Error("delay slot of taken be,a annulled")
	}
	if c.Reg(isa.O0+1) != 0 {
		t.Error("branch-skipped instruction executed")
	}
	if c.Reg(isa.O0+2) != 2 {
		t.Error("target not reached")
	}
}

// TestBranchInDelaySlotOfJmpl: the classic DCTI couple — a branch
// sitting in a jmpl's delay slot retargets the second transfer.
func TestBranchInDelaySlotOfJmpl(t *testing.T) {
	// 0x1000: build target 0x1018 in %g1
	// 0x1008: jmpl %g1 (delayed)
	// 0x100C: ba +4 (delay slot, retargets after one instruction)
	// 0x1018: mov 5 (executes: jmpl target)
	// then ba target = 0x100C+16 = 0x101C: mov 6
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.G1, 0x101)),
		enc(t, isa.Inst{Op: isa.OpSLL, Rd: isa.G1, Rs1: isa.G1, UseImm: true, Imm: 4}),  // 0x1010
		enc(t, isa.Inst{Op: isa.OpJMPL, Rd: isa.G0, Rs1: isa.G1, UseImm: true, Imm: 8}), // → 0x1018
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Imm: 4}),                       // at 0x100C → 0x101C
		isa.NOP,
		isa.NOP,
		enc(t, movImm(isa.O0, 5)),   // 0x1018
		enc(t, movImm(isa.O0+1, 6)), // 0x101C
	)
	run(t, c, 6)
	if c.Reg(isa.O0) != 5 || c.Reg(isa.O0+1) != 6 {
		t.Errorf("DCTI couple: o0=%d o1=%d, want 5,6", c.Reg(isa.O0), c.Reg(isa.O0+1))
	}
}

// TestYRegisterWrite: wr %y with register xor-immediate semantics.
func TestYRegisterWrite(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.O0, 0xF0)),
		enc(t, isa.Inst{Op: isa.OpWRY, Rs1: isa.O0, UseImm: true, Imm: 0x0F}), // y = o0 ^ 0x0F
		enc(t, isa.Inst{Op: isa.OpRDY, Rd: isa.O0 + 1}),
	)
	run(t, c, 3)
	if got := c.Reg(isa.O0 + 1); got != 0xFF {
		t.Errorf("y = %#x, want 0xFF (rs1 xor imm)", got)
	}
}

// TestUDivOverflowClamps: a 64-bit dividend whose quotient exceeds 32
// bits clamps to the maximum (SPARC divide overflow semantics).
func TestUDivOverflowClamps(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpWRY, Rs1: isa.G0, UseImm: true, Imm: 2}), // Y=2: dividend ≈ 2^33
		enc(t, movImm(isa.O0, 0)),
		enc(t, isa.Inst{Op: isa.OpUDIVcc, Rd: isa.O0 + 1, Rs1: isa.O0, UseImm: true, Imm: 2}),
	)
	run(t, c, 3)
	if got := c.Reg(isa.O0 + 1); got != 0xFFFFFFFF {
		t.Errorf("overflowing udiv = %#x, want clamp", got)
	}
	if c.PSR()&PSROverflow == 0 {
		t.Error("V not set on divide overflow")
	}
}
