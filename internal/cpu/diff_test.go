package cpu

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"liquidarch/internal/isa"
)

// Differential property tests for the predecoded-instruction cache:
// a CPU with the cache warm must be bit-identical — registers, control
// state, memory, cycle count, instruction mix — to one that re-decodes
// every word from scratch. CPU B calls InvalidatePredecode before
// every Step, so its cache never hits; CPU A runs normally. Any
// divergence means the predecode path changed architectural
// behaviour, which the word-revalidation scheme is supposed to make
// impossible.

// diffPair builds two CPUs over independent but identically
// initialised memories, preloaded with the same program.
func diffPair(t *testing.T, words ...uint32) (a, b *CPU, am, bm *flatMem) {
	t.Helper()
	a, am = newCPU(t, DefaultConfig(), words...)
	b, bm = newCPU(t, DefaultConfig(), words...)
	return a, b, am, bm
}

// stepBoth advances both CPUs one instruction, with B's predecode
// cache flushed first, and fails on any state divergence.
func stepBoth(t *testing.T, a, b *CPU, step int) {
	t.Helper()
	errA := a.Step()
	b.InvalidatePredecode()
	errB := b.Step()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("step %d: error divergence: cached=%v bypass=%v", step, errA, errB)
	}
	if d := diffState(a, b); d != "" {
		t.Fatalf("step %d (pc=%#x): predecoded CPU diverged: %s", step, a.PC(), d)
	}
}

// diffState compares every piece of architectural and accounting
// state; it returns "" when the CPUs agree.
func diffState(a, b *CPU) string {
	if a.PC() != b.PC() || a.NPC() != b.NPC() {
		return fmt.Sprintf("pc/npc %#x/%#x vs %#x/%#x", a.PC(), a.NPC(), b.PC(), b.NPC())
	}
	if a.PSR() != b.PSR() {
		return fmt.Sprintf("psr %#x vs %#x", a.PSR(), b.PSR())
	}
	if a.Y() != b.Y() {
		return fmt.Sprintf("y %#x vs %#x", a.Y(), b.Y())
	}
	if a.WIM() != b.WIM() || a.TBR() != b.TBR() {
		return fmt.Sprintf("wim/tbr %#x/%#x vs %#x/%#x", a.WIM(), a.TBR(), b.WIM(), b.TBR())
	}
	if a.Cycles != b.Cycles {
		return fmt.Sprintf("cycles %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Stats() != b.Stats() {
		return fmt.Sprintf("stats %+v vs %+v", a.Stats(), b.Stats())
	}
	for r := isa.Reg(0); r < 32; r++ {
		if a.Reg(r) != b.Reg(r) {
			return fmt.Sprintf("reg %d: %#x vs %#x", r, a.Reg(r), b.Reg(r))
		}
	}
	return ""
}

// randProgram generates a straight-line stream of ALU, sethi, shift,
// load and store instructions that can never trap: G1 holds a scratch
// base (0x800, below the program at 0x1000) and is excluded from the
// destination pool, loads/stores are word-sized with word-aligned
// offsets inside the scratch window, and shifts mask their amounts.
func randProgram(t *testing.T, rng *rand.Rand, n int) []uint32 {
	t.Helper()
	dests := []isa.Reg{
		isa.O0, isa.O0 + 1, isa.O0 + 2, isa.O0 + 3, isa.O0 + 4, isa.O0 + 5,
		isa.L0, isa.L0 + 1, isa.L0 + 2, isa.L0 + 3, isa.L0 + 4, isa.L0 + 5,
		isa.G0 + 2, isa.G0 + 3, isa.G0 + 4,
	}
	srcs := append([]isa.Reg{isa.G0, isa.G1}, dests...)
	alu := []isa.Op{
		isa.OpOR, isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpXOR,
		isa.OpADDcc, isa.OpSUBcc, isa.OpXORcc,
	}
	pick := func(rs []isa.Reg) isa.Reg { return rs[rng.Intn(len(rs))] }

	words := []uint32{enc(t, movImm(isa.G1, 0x800))}
	for len(words) < n {
		var in isa.Inst
		switch rng.Intn(10) {
		case 0: // sethi
			in = isa.Inst{Op: isa.OpSETHI, Rd: pick(dests), Imm: int32(rng.Uint32() & 0x3FFFFF)}
		case 1: // shift
			op := isa.OpSLL
			if rng.Intn(2) == 0 {
				op = isa.OpSRL
			}
			in = isa.Inst{Op: op, Rd: pick(dests), Rs1: pick(srcs), UseImm: true, Imm: int32(rng.Intn(32))}
		case 2: // load word from scratch
			in = isa.Inst{Op: isa.OpLD, Rd: pick(dests), Rs1: isa.G1, UseImm: true, Imm: int32(rng.Intn(256) * 4)}
		case 3: // store word to scratch
			in = isa.Inst{Op: isa.OpST, Rd: pick(srcs), Rs1: isa.G1, UseImm: true, Imm: int32(rng.Intn(256) * 4)}
		default: // ALU, register or small-immediate form
			in = isa.Inst{Op: alu[rng.Intn(len(alu))], Rd: pick(dests), Rs1: pick(srcs)}
			if rng.Intn(2) == 0 {
				in.UseImm = true
				in.Imm = int32(rng.Intn(8191) - 4095)
			} else {
				in.Rs2 = pick(srcs)
			}
		}
		words = append(words, enc(t, in))
	}
	return words
}

// TestDiffPredecodeRandomStreams runs seeded random programs on both
// CPUs, comparing full state after every instruction and memory at
// the end.
func TestDiffPredecodeRandomStreams(t *testing.T) {
	const progLen = 128
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			words := randProgram(t, rng, progLen)
			a, b, am, bm := diffPair(t, words...)
			for i := 0; i < len(words); i++ {
				stepBoth(t, a, b, i)
			}
			if !bytes.Equal(am.data, bm.data) {
				t.Fatal("memory images diverged")
			}
		})
	}
}

// TestDiffPredecodeLoopHitsCache runs a counted loop so CPU A
// actually executes from warm predecode entries (a straight-line
// stream never re-visits a PC). The loop body touches memory and the
// condition codes; both CPUs must retire the same work.
func TestDiffPredecodeLoopHitsCache(t *testing.T) {
	// o0 = 0; for g2 = 50; g2 != 0; g2-- { o0 += 3; st o0 -> [g1] }
	words := []uint32{
		enc(t, movImm(isa.G1, 0x800)),
		enc(t, movImm(isa.G0+2, 50)),
		enc(t, movImm(isa.O0, 0)),
		// loop:
		enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 3}),
		enc(t, isa.Inst{Op: isa.OpST, Rd: isa.O0, Rs1: isa.G1, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpSUBcc, Rd: isa.G0 + 2, Rs1: isa.G0 + 2, UseImm: true, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondNE, Imm: -3}),
		enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.G0, Rs1: isa.G0, UseImm: true, Imm: 0}), // delay-slot nop
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Imm: 0}),        // spin
	}
	a, b, am, bm := diffPair(t, words...)
	// 3 setup + 50 iterations × 5 (body 3 + branch + delay slot) + slack.
	steps := 3 + 50*5 + 4
	for i := 0; i < steps; i++ {
		stepBoth(t, a, b, i)
	}
	if got := a.Reg(isa.O0); got != 150 {
		t.Fatalf("loop result %%o0 = %d, want 150", got)
	}
	if !bytes.Equal(am.data, bm.data) {
		t.Fatal("memory images diverged")
	}
}

// TestDiffPredecodeSelfModifyingStore overwrites an executed loop
// instruction through the CPU's own store port. The predecode entry
// for that PC is stale after the store; the word re-check must force
// a re-decode so both CPUs execute the NEW instruction on the next
// iteration.
func TestDiffPredecodeSelfModifyingStore(t *testing.T) {
	const progBase = 0x1000
	// Program layout (word index from progBase):
	//  0  or  %g0, 0x800, %g1     scratch/base
	//  1  or  %g0, 2, %g2         loop counter
	//  2  or  %g0, 0, %o0         accumulator
	//  3  sethi %hi(new), %g3     build replacement word "add %o0, 100, %o0"
	//  4  or  %g3, %lo(new), %g3
	//  5  or  %g0, 0, %o5         (nop-ish filler keeps offsets readable)
	// loop:
	//  6  add %o0, 1, %o0         <- overwritten with "add %o0, 100, %o0"
	//  7  st  %g3, [%g1 + 0x820]  store new word over instruction slot 6
	//  8  subcc %g2, 1, %g2
	//  9  bne loop
	// 10  nop (delay slot)
	// 11  ba,a .                  spin
	//
	// Slot 6 lives at progBase+24 = 0x1018 = %g1(0x800) + 0x818.
	newWord := enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 100})
	words := []uint32{
		enc(t, movImm(isa.G1, 0x800)),
		enc(t, movImm(isa.G0+2, 2)),
		enc(t, movImm(isa.O0, 0)),
		enc(t, isa.Inst{Op: isa.OpSETHI, Rd: isa.G0 + 3, Imm: int32(newWord >> 10)}),
		enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.G0 + 3, Rs1: isa.G0 + 3, UseImm: true, Imm: int32(newWord & 0x3FF)}),
		enc(t, movImm(isa.O0+5, 0)),
		// loop:
		enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpST, Rd: isa.G0 + 3, Rs1: isa.G1, UseImm: true, Imm: 0x818}),
		enc(t, isa.Inst{Op: isa.OpSUBcc, Rd: isa.G0 + 2, Rs1: isa.G0 + 2, UseImm: true, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondNE, Imm: -3}),
		enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.G0, Rs1: isa.G0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Imm: 0}),
	}
	a, b, am, bm := diffPair(t, words...)
	// 6 setup + 2 iterations × 5 + slack.
	for i := 0; i < 6+2*5+4; i++ {
		stepBoth(t, a, b, i)
	}
	// Iteration 1 runs the original "+1", then overwrites the slot;
	// iteration 2 must decode the new word and add 100.
	if got := a.Reg(isa.O0); got != 101 {
		t.Fatalf("self-modified loop %%o0 = %d, want 101 (stale predecode executed?)", got)
	}
	if !bytes.Equal(am.data, bm.data) {
		t.Fatal("memory images diverged")
	}
}

// TestDiffPredecodeInvalidateIsArchitecturallyInvisible: flushing the
// cache mid-run at arbitrary points must never change behaviour.
func TestDiffPredecodeInvalidateIsArchitecturallyInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	words := randProgram(t, rng, 96)
	a, _ := newCPU(t, DefaultConfig(), words...)
	b, _ := newCPU(t, DefaultConfig(), words...)
	for i := 0; i < len(words); i++ {
		if err := a.Step(); err != nil {
			t.Fatalf("cached step %d: %v", i, err)
		}
		if rng.Intn(4) == 0 {
			b.InvalidatePredecode()
		}
		if err := b.Step(); err != nil {
			t.Fatalf("flushed step %d: %v", i, err)
		}
		if d := diffState(a, b); d != "" {
			t.Fatalf("step %d: random invalidation changed behaviour: %s", i, d)
		}
	}
}
