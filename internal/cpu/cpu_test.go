package cpu

import (
	"encoding/binary"
	"errors"
	"testing"

	"liquidarch/internal/amba"
	"liquidarch/internal/isa"
)

// flatMem is a simple 1-cycle memory for CPU unit tests.
type flatMem struct {
	data []byte
}

func newFlat(size int) *flatMem { return &flatMem{data: make([]byte, size)} }

func (m *flatMem) Read(addr uint32, size amba.Size) (uint32, int, error) {
	if int(addr)+int(size) > len(m.data) {
		return 0, 1, &amba.BusError{Addr: addr}
	}
	switch size {
	case amba.SizeWord:
		return binary.BigEndian.Uint32(m.data[addr:]), 1, nil
	case amba.SizeHalf:
		return uint32(binary.BigEndian.Uint16(m.data[addr:])), 1, nil
	default:
		return uint32(m.data[addr]), 1, nil
	}
}

func (m *flatMem) Write(addr uint32, val uint32, size amba.Size) (int, error) {
	if int(addr)+int(size) > len(m.data) {
		return 1, &amba.BusError{Addr: addr, Write: true}
	}
	switch size {
	case amba.SizeWord:
		binary.BigEndian.PutUint32(m.data[addr:], val)
	case amba.SizeHalf:
		binary.BigEndian.PutUint16(m.data[addr:], uint16(val))
	default:
		m.data[addr] = byte(val)
	}
	return 1, nil
}

// enc encodes or dies.
func enc(t *testing.T, in isa.Inst) uint32 {
	t.Helper()
	w, err := isa.Encode(in)
	if err != nil {
		t.Fatalf("encode %+v: %v", in, err)
	}
	return w
}

// newCPU builds a CPU over a shared 64 KB flat memory preloaded with
// the given instruction words at address 0, with traps enabled and a
// trap table that just spins (so unexpected traps are visible).
func newCPU(t *testing.T, cfg Config, words ...uint32) (*CPU, *flatMem) {
	t.Helper()
	m := newFlat(64 << 10)
	const progBase = 0x1000
	for i, w := range words {
		binary.BigEndian.PutUint32(m.data[progBase+i*4:], w)
	}
	c, err := New(cfg, m, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enable traps with TBR=0 and start at the program base.
	c.psr |= PSRET
	c.SetPC(progBase)
	return c, m
}

// run steps n instructions, failing on error mode.
func run(t *testing.T, c *CPU, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Step(); err != nil {
			t.Fatalf("step %d (pc=%#x): %v", i, c.PC(), err)
		}
	}
}

func movImm(rd isa.Reg, v int32) isa.Inst {
	return isa.Inst{Op: isa.OpOR, Rd: rd, Rs1: isa.G0, UseImm: true, Imm: v}
}

func TestMovAndArithmetic(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.O0, 40)),
		enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 2}),
		enc(t, isa.Inst{Op: isa.OpSUB, Rd: isa.O0 + 1, Rs1: isa.O0, UseImm: true, Imm: 10}),
	)
	run(t, c, 3)
	if got := c.Reg(isa.O0); got != 42 {
		t.Errorf("%%o0 = %d, want 42", got)
	}
	if got := c.Reg(isa.O0 + 1); got != 32 {
		t.Errorf("%%o1 = %d, want 32", got)
	}
	if c.Stats().Instructions != 3 {
		t.Errorf("instruction count = %d", c.Stats().Instructions)
	}
}

func TestG0AlwaysZero(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.G0, 99)),
		enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 1}),
	)
	run(t, c, 2)
	if c.Reg(isa.G0) != 0 {
		t.Error("register g0 became non-zero")
	}
	if c.Reg(isa.O0) != 1 {
		t.Errorf("%%o0 = %d", c.Reg(isa.O0))
	}
}

func TestSethiOrConstant(t *testing.T) {
	// set 0xDEADBEEF: sethi %hi, then or %lo.
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpSETHI, Rd: isa.G1, Imm: int32(0xDEADBEEF >> 10)}),
		enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.G1, Rs1: isa.G1, UseImm: true, Imm: int32(0xDEADBEEF & 0x3FF)}),
	)
	run(t, c, 2)
	if got := c.Reg(isa.G1); got != 0xDEADBEEF {
		t.Errorf("%%g1 = %#x", got)
	}
}

func TestAddccFlags(t *testing.T) {
	cases := []struct {
		a, b       uint32
		n, z, v, y bool // y = carry
	}{
		{1, 1, false, false, false, false},
		{0xFFFFFFFF, 1, false, true, false, true},
		{0x7FFFFFFF, 1, true, false, true, false},
		{0x80000000, 0x80000000, false, true, true, true},
		{0, 0, false, true, false, false},
	}
	for _, cse := range cases {
		c, _ := newCPU(t, DefaultConfig(),
			enc(t, isa.Inst{Op: isa.OpSETHI, Rd: isa.O0, Imm: int32(cse.a >> 10)}),
			enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: int32(cse.a & 0x3FF)}),
			enc(t, isa.Inst{Op: isa.OpSETHI, Rd: isa.O0 + 1, Imm: int32(cse.b >> 10)}),
			enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.O0 + 1, Rs1: isa.O0 + 1, UseImm: true, Imm: int32(cse.b & 0x3FF)}),
			enc(t, isa.Inst{Op: isa.OpADDcc, Rd: isa.O0 + 2, Rs1: isa.O0, Rs2: isa.O0 + 1}),
		)
		run(t, c, 5)
		psr := c.PSR()
		if got := psr&PSRNegative != 0; got != cse.n {
			t.Errorf("addcc(%#x,%#x): N=%v want %v", cse.a, cse.b, got, cse.n)
		}
		if got := psr&PSRZero != 0; got != cse.z {
			t.Errorf("addcc(%#x,%#x): Z=%v want %v", cse.a, cse.b, got, cse.z)
		}
		if got := psr&PSROverflow != 0; got != cse.v {
			t.Errorf("addcc(%#x,%#x): V=%v want %v", cse.a, cse.b, got, cse.v)
		}
		if got := psr&PSRCarry != 0; got != cse.y {
			t.Errorf("addcc(%#x,%#x): C=%v want %v", cse.a, cse.b, got, cse.y)
		}
	}
}

func TestSubccBorrowAndCompare(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.O0, 5)),
		enc(t, isa.Inst{Op: isa.OpSUBcc, Rd: isa.G0, Rs1: isa.O0, UseImm: true, Imm: 7}), // cmp 5,7
	)
	run(t, c, 2)
	psr := c.PSR()
	if psr&PSRCarry == 0 {
		t.Error("cmp 5,7: borrow (C) not set")
	}
	if psr&PSRNegative == 0 {
		t.Error("cmp 5,7: N not set")
	}
	if psr&PSRZero != 0 || psr&PSROverflow != 0 {
		t.Error("cmp 5,7: Z or V wrongly set")
	}
}

func Test64BitAddViaAddx(t *testing.T) {
	// 0x00000001_FFFFFFFF + 1 = 0x00000002_00000000
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.O0, -1)),  // low a = 0xFFFFFFFF
		enc(t, movImm(isa.O0+1, 1)), // high a = 1
		enc(t, isa.Inst{Op: isa.OpADDcc, Rd: isa.O0 + 2, Rs1: isa.O0, UseImm: true, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpADDX, Rd: isa.O0 + 3, Rs1: isa.O0 + 1, UseImm: true, Imm: 0}),
	)
	run(t, c, 4)
	if lo := c.Reg(isa.O0 + 2); lo != 0 {
		t.Errorf("low = %#x", lo)
	}
	if hi := c.Reg(isa.O0 + 3); hi != 2 {
		t.Errorf("high = %#x, want 2", hi)
	}
}

func TestSubxBorrowChain(t *testing.T) {
	// 0x00000002_00000000 - 1 = 0x00000001_FFFFFFFF
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.O0, 0)),
		enc(t, movImm(isa.O0+1, 2)),
		enc(t, isa.Inst{Op: isa.OpSUBcc, Rd: isa.O0 + 2, Rs1: isa.O0, UseImm: true, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpSUBX, Rd: isa.O0 + 3, Rs1: isa.O0 + 1, UseImm: true, Imm: 0}),
	)
	run(t, c, 4)
	if lo := c.Reg(isa.O0 + 2); lo != 0xFFFFFFFF {
		t.Errorf("low = %#x", lo)
	}
	if hi := c.Reg(isa.O0 + 3); hi != 1 {
		t.Errorf("high = %#x, want 1", hi)
	}
}

func TestLogicAndShifts(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.O0, 0xF0)),
		enc(t, isa.Inst{Op: isa.OpAND, Rd: isa.O0 + 1, Rs1: isa.O0, UseImm: true, Imm: 0x3C}),
		enc(t, isa.Inst{Op: isa.OpXOR, Rd: isa.O0 + 2, Rs1: isa.O0, UseImm: true, Imm: 0xFF}),
		enc(t, isa.Inst{Op: isa.OpSLL, Rd: isa.O0 + 3, Rs1: isa.O0, UseImm: true, Imm: 4}),
		enc(t, isa.Inst{Op: isa.OpSRL, Rd: isa.O0 + 4, Rs1: isa.O0, UseImm: true, Imm: 4}),
		enc(t, movImm(isa.O0+5, -16)),
		enc(t, isa.Inst{Op: isa.OpSRA, Rd: isa.O0 + 5, Rs1: isa.O0 + 5, UseImm: true, Imm: 2}),
		enc(t, isa.Inst{Op: isa.OpANDN, Rd: isa.L0, Rs1: isa.O0, UseImm: true, Imm: 0x30}),
		enc(t, isa.Inst{Op: isa.OpORN, Rd: isa.L1, Rs1: isa.G0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpXNOR, Rd: isa.L2, Rs1: isa.O0, Rs2: isa.O0}),
	)
	run(t, c, 10)
	checks := map[isa.Reg]uint32{
		isa.O0 + 1: 0x30,
		isa.O0 + 2: 0x0F,
		isa.O0 + 3: 0xF00,
		isa.O0 + 4: 0x0F,
		isa.O0 + 5: 0xFFFFFFFC,
		isa.L0:     0xC0,
		isa.L1:     0xFFFFFFFF,
		isa.L2:     0xFFFFFFFF,
	}
	for r, want := range checks {
		if got := c.Reg(r); got != want {
			t.Errorf("%s = %#x, want %#x", r.Name(), got, want)
		}
	}
}

func TestBranchTakenNotTakenAnnul(t *testing.T) {
	// cmp 1,1; be +3 (taken); mov 10 (delay, executes); mov 99 (skipped); target: mov 7
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpSUBcc, Rd: isa.G0, Rs1: isa.G0, UseImm: true, Imm: 0}), // sets Z
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondE, Imm: 3}),
		enc(t, movImm(isa.O0, 10)),   // delay slot
		enc(t, movImm(isa.O0+1, 99)), // skipped
		enc(t, movImm(isa.O0+2, 7)),  // branch target
	)
	run(t, c, 4)
	if c.Reg(isa.O0) != 10 {
		t.Error("delay slot of taken branch not executed")
	}
	if c.Reg(isa.O0+1) != 0 {
		t.Error("skipped instruction executed")
	}
	if c.Reg(isa.O0+2) != 7 {
		t.Error("branch target not reached")
	}
	st := c.Stats()
	if st.Branches != 1 || st.Taken != 1 {
		t.Errorf("branch stats = %+v", st)
	}
}

func TestAnnulledDelaySlotUntaken(t *testing.T) {
	// bne,a (untaken since Z set): delay slot annulled.
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpSUBcc, Rd: isa.G0, Rs1: isa.G0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondNE, Annul: true, Imm: 3}),
		enc(t, movImm(isa.O0, 55)), // annulled
		enc(t, movImm(isa.O0+1, 1)),
	)
	run(t, c, 4)
	if c.Reg(isa.O0) != 0 {
		t.Error("annulled delay slot executed")
	}
	if c.Reg(isa.O0+1) != 1 {
		t.Error("fall-through instruction not executed")
	}
	if c.Stats().Annulled != 1 {
		t.Errorf("Annulled = %d", c.Stats().Annulled)
	}
}

func TestBaAnnulSkipsDelay(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Imm: 2}),
		enc(t, movImm(isa.O0, 55)),  // annulled even though taken
		enc(t, movImm(isa.O0+1, 1)), // target
	)
	run(t, c, 3)
	if c.Reg(isa.O0) != 0 {
		t.Error("ba,a delay slot executed")
	}
	if c.Reg(isa.O0+1) != 1 {
		t.Error("ba,a target not reached")
	}
}

func TestCallAndJmplReturn(t *testing.T) {
	// call +4; nop (delay); mov 9 (after return lands here+? )
	// Layout: 0x1000 call 0x1010; 0x1004 nop(delay); 0x1008 mov %o2,3; 0x100C ba,a spin
	// 0x1010 sub: mov %o0,1; jmpl %o7+8,%g0 (retl); nop (delay)
	spin := enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Imm: 0})
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpCALL, Imm: 4}),
		isa.NOP,
		enc(t, movImm(isa.O0+2, 3)),
		spin,
		enc(t, movImm(isa.O0, 1)), // 0x1010: sub body
		enc(t, isa.Inst{Op: isa.OpJMPL, Rd: isa.G0, Rs1: isa.O7, UseImm: true, Imm: 8}),
		isa.NOP,
	)
	run(t, c, 6)
	if c.Reg(isa.O7) != 0x1000 {
		t.Errorf("%%o7 = %#x, want 0x1000", c.Reg(isa.O7))
	}
	if c.Reg(isa.O0) != 1 {
		t.Error("subroutine body not executed")
	}
	if c.Reg(isa.O0+2) != 3 {
		t.Error("return target not reached")
	}
}

func TestLoadsStoresAllSizes(t *testing.T) {
	c, m := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.L0, 0x800)),
		enc(t, isa.Inst{Op: isa.OpLD, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpLDUB, Rd: isa.O0 + 1, Rs1: isa.L0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpLDSB, Rd: isa.O0 + 2, Rs1: isa.L0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpLDUH, Rd: isa.O0 + 3, Rs1: isa.L0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpLDSH, Rd: isa.O0 + 4, Rs1: isa.L0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpST, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 8}),
		enc(t, isa.Inst{Op: isa.OpSTB, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 12}),
		enc(t, isa.Inst{Op: isa.OpSTH, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 14}),
	)
	binary.BigEndian.PutUint32(m.data[0x800:], 0xF1E2D3C4)
	run(t, c, 9)
	if got := c.Reg(isa.O0); got != 0xF1E2D3C4 {
		t.Errorf("ld = %#x", got)
	}
	if got := c.Reg(isa.O0 + 1); got != 0xF1 {
		t.Errorf("ldub = %#x", got)
	}
	if got := c.Reg(isa.O0 + 2); got != 0xFFFFFFF1 {
		t.Errorf("ldsb = %#x (sign extension)", got)
	}
	if got := c.Reg(isa.O0 + 3); got != 0xF1E2 {
		t.Errorf("lduh = %#x", got)
	}
	if got := c.Reg(isa.O0 + 4); got != 0xFFFFF1E2 {
		t.Errorf("ldsh = %#x (sign extension)", got)
	}
	if got := binary.BigEndian.Uint32(m.data[0x808:]); got != 0xF1E2D3C4 {
		t.Errorf("st wrote %#x", got)
	}
	if m.data[0x80C] != 0xC4 {
		t.Errorf("stb wrote %#x", m.data[0x80C])
	}
	if got := binary.BigEndian.Uint16(m.data[0x80E:]); got != 0xD3C4 {
		t.Errorf("sth wrote %#x", got)
	}
}

func TestLddStd(t *testing.T) {
	c, m := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.L0, 0x800)),
		enc(t, isa.Inst{Op: isa.OpLDD, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpSTD, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 16}),
	)
	binary.BigEndian.PutUint64(m.data[0x800:], 0x0102030405060708)
	run(t, c, 3)
	if c.Reg(isa.O0) != 0x01020304 || c.Reg(isa.O0+1) != 0x05060708 {
		t.Errorf("ldd = %#x %#x", c.Reg(isa.O0), c.Reg(isa.O0+1))
	}
	if got := binary.BigEndian.Uint64(m.data[0x810:]); got != 0x0102030405060708 {
		t.Errorf("std wrote %#x", got)
	}
}

func TestSwapAndLdstub(t *testing.T) {
	c, m := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.L0, 0x800)),
		enc(t, movImm(isa.O0, 0x77)),
		enc(t, isa.Inst{Op: isa.OpSWAP, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpLDSTUB, Rd: isa.O0 + 1, Rs1: isa.L0, UseImm: true, Imm: 4}),
	)
	binary.BigEndian.PutUint32(m.data[0x800:], 0x12345678)
	m.data[0x804] = 0x5A
	run(t, c, 4)
	if c.Reg(isa.O0) != 0x12345678 {
		t.Errorf("swap loaded %#x", c.Reg(isa.O0))
	}
	if got := binary.BigEndian.Uint32(m.data[0x800:]); got != 0x77 {
		t.Errorf("swap stored %#x", got)
	}
	if c.Reg(isa.O0+1) != 0x5A {
		t.Errorf("ldstub loaded %#x", c.Reg(isa.O0+1))
	}
	if m.data[0x804] != 0xFF {
		t.Errorf("ldstub stored %#x, want 0xFF", m.data[0x804])
	}
}

func TestMulDivAndY(t *testing.T) {
	// 100000 = 0x186A0 exceeds simm13, so it is built with sethi/or.
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpSETHI, Rd: isa.O0, Imm: int32(100000 >> 10)}),
		enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: int32(100000 & 0x3FF)}),
		enc(t, isa.Inst{Op: isa.OpUMUL, Rd: isa.O0 + 1, Rs1: isa.O0, Rs2: isa.O0}), // 1e10 > 32 bits
		enc(t, isa.Inst{Op: isa.OpRDY, Rd: isa.O0 + 2}),
		enc(t, movImm(isa.O0+3, -6)),
		enc(t, isa.Inst{Op: isa.OpSMUL, Rd: isa.O0 + 4, Rs1: isa.O0 + 3, UseImm: true, Imm: 7}), // -42
		enc(t, isa.Inst{Op: isa.OpWRY, Rs1: isa.G0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpUDIV, Rd: isa.O0 + 5, Rs1: isa.O0, UseImm: true, Imm: 7}),
		enc(t, isa.Inst{Op: isa.OpSDIV, Rd: isa.L0, Rs1: isa.O0 + 3, UseImm: true, Imm: 2}), // would need Y sign...
	)
	run(t, c, 8)
	var p uint64 = 100000 * 100000
	if got := c.Reg(isa.O0 + 1); got != uint32(p) {
		t.Errorf("umul low = %#x, want %#x", got, uint32(p))
	}
	if got := c.Reg(isa.O0 + 2); got != uint32(p>>32) {
		t.Errorf("Y = %#x, want %#x", got, uint32(p>>32))
	}
	if got := c.Reg(isa.O0 + 4); got != uint32(0xFFFFFFFF-41) {
		t.Errorf("smul = %#x, want -42", got)
	}
	if got := c.Reg(isa.O0 + 5); got != 100000/7 {
		t.Errorf("udiv = %d, want %d", got, 100000/7)
	}
}

func TestDivByZeroTrapsToVector(t *testing.T) {
	trapped := uint8(0)
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpUDIV, Rd: isa.O0, Rs1: isa.O0, Rs2: isa.G0}),
	)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	run(t, c, 1)
	if trapped != TrapDivZero {
		t.Errorf("trap type = %#x, want %#x", trapped, TrapDivZero)
	}
	// Vectored to TBR | tt<<4.
	if c.PC() != uint32(TrapDivZero)<<4 {
		t.Errorf("pc = %#x after trap", c.PC())
	}
	if c.PSR()&PSRET != 0 {
		t.Error("ET still set inside trap")
	}
}

func TestMULSccComputesProduct(t *testing.T) {
	// Classic 32-step multiply: 13 * 11 = 143 using mulscc.
	// Setup: Y = multiplier, rs1 = 0 (accumulator), clear N and V.
	words := []uint32{
		enc(t, movImm(isa.O0, 13)), // multiplicand in %o0 (operand2)
		enc(t, isa.Inst{Op: isa.OpWRY, Rs1: isa.G0, UseImm: true, Imm: 11}),     // Y = multiplier
		enc(t, isa.Inst{Op: isa.OpANDcc, Rd: isa.G0, Rs1: isa.G0, Rs2: isa.G0}), // clear flags
		enc(t, movImm(isa.O0+1, 0)), // accumulator
	}
	for i := 0; i < 32; i++ {
		words = append(words, enc(t, isa.Inst{Op: isa.OpMULScc, Rd: isa.O0 + 1, Rs1: isa.O0 + 1, Rs2: isa.O0}))
	}
	// Final shift-correct step with %g0.
	words = append(words, enc(t, isa.Inst{Op: isa.OpMULScc, Rd: isa.O0 + 1, Rs1: isa.O0 + 1, Rs2: isa.G0}))
	words = append(words, enc(t, isa.Inst{Op: isa.OpRDY, Rd: isa.O0 + 2}))
	c, _ := newCPU(t, DefaultConfig(), words...)
	run(t, c, len(words))
	if got := c.Reg(isa.O0 + 2); got != 143 {
		t.Errorf("mulscc product (Y) = %d, want 143", got)
	}
}

func TestTrapIllegalWhenETClear(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpUNIMP, Imm: 0}),
	)
	c.psr &^= PSRET
	err := c.Step()
	var em *ErrorMode
	if !errors.As(err, &em) {
		t.Fatalf("err = %v, want ErrorMode", err)
	}
	if em.TT != TrapIllegalInst {
		t.Errorf("TT = %#x", em.TT)
	}
	if em.Error() == "" {
		t.Error("empty error string")
	}
}

func TestAlignmentTraps(t *testing.T) {
	for _, in := range []isa.Inst{
		{Op: isa.OpLD, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 2},
		{Op: isa.OpLDUH, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 1},
		{Op: isa.OpST, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 3},
		{Op: isa.OpLDD, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 4},
		{Op: isa.OpJMPL, Rd: isa.G0, Rs1: isa.G0, UseImm: true, Imm: 2},
	} {
		trapped := uint8(0)
		c, _ := newCPU(t, DefaultConfig(), enc(t, in))
		c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
		run(t, c, 1)
		if trapped != TrapAlignment {
			t.Errorf("%v: trap = %#x, want alignment", in.Op.Name(), trapped)
		}
	}
}

func TestLddOddRdIllegal(t *testing.T) {
	trapped := uint8(0)
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpLDD, Rd: isa.O0 + 1, Rs1: isa.G0, UseImm: true, Imm: 0}),
	)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	run(t, c, 1)
	if trapped != TrapIllegalInst {
		t.Errorf("trap = %#x", trapped)
	}
}

func TestSaveRestoreWindows(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.O0, 7)),
		enc(t, isa.Inst{Op: isa.OpSAVE, Rd: isa.SP, Rs1: isa.SP, UseImm: true, Imm: -96}),
		enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.L0, Rs1: isa.I0, UseImm: true, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpRESTORE, Rd: isa.O0 + 1, Rs1: isa.L0, UseImm: true, Imm: 0}),
	)
	startCWP := c.CWP()
	run(t, c, 2)
	if c.CWP() != (startCWP+c.Config().NWindows-1)%c.Config().NWindows {
		t.Errorf("CWP after save = %d", c.CWP())
	}
	// %i0 in new window is old %o0.
	if got := c.Reg(isa.I0); got != 7 {
		t.Errorf("%%i0 = %d, want 7 (window overlap)", got)
	}
	run(t, c, 2)
	if c.CWP() != startCWP {
		t.Errorf("CWP after restore = %d", c.CWP())
	}
	// restore's result (computed in old window's %l0 = 8) lands in
	// the restored window's %o1.
	if got := c.Reg(isa.O0 + 1); got != 8 {
		t.Errorf("restore result = %d, want 8", got)
	}
}

func TestWindowOverflowTrap(t *testing.T) {
	trapped := uint8(0)
	cfg := DefaultConfig()
	c, _ := newCPU(t, cfg,
		enc(t, isa.Inst{Op: isa.OpWRWIM, Rs1: isa.G0, UseImm: true, Imm: 1 << 7}),         // invalidate window 7
		enc(t, isa.Inst{Op: isa.OpSAVE, Rd: isa.SP, Rs1: isa.SP, UseImm: true, Imm: -96}), // CWP 0→7: trap
	)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	run(t, c, 2)
	if trapped != TrapWindowOverflow {
		t.Errorf("trap = %#x, want window overflow", trapped)
	}
	if c.Stats().WindowSpills != 1 {
		t.Errorf("WindowSpills = %d", c.Stats().WindowSpills)
	}
	// The trapped save must NOT have changed CWP (it re-executes
	// after the handler): trap entry decrements once only.
	if c.CWP() != 7 {
		t.Errorf("CWP in trap = %d, want 7 (one decrement by trap entry)", c.CWP())
	}
	// %l1 in the trap window holds the PC of the save.
	if got := c.Reg(isa.L1); got != 0x1004 {
		t.Errorf("%%l1 = %#x, want save PC 0x1004", got)
	}
}

func TestWindowUnderflowTrap(t *testing.T) {
	trapped := uint8(0)
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpWRWIM, Rs1: isa.G0, UseImm: true, Imm: 1 << 1}),
		enc(t, isa.Inst{Op: isa.OpRESTORE}), // CWP 0→1: trap
	)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	run(t, c, 2)
	if trapped != TrapWindowUnderflow {
		t.Errorf("trap = %#x, want window underflow", trapped)
	}
}

func TestTrapAndRett(t *testing.T) {
	// Software trap ta 0x10 vectors to (0x80+0x10)<<4 = 0x900; the
	// handler sets %g2 and returns with jmp %l2; rett %l2+4.
	prog := []uint32{
		enc(t, isa.Inst{Op: isa.OpTicc, Cond: isa.CondA, Rs1: isa.G0, UseImm: true, Imm: 0x10}),
		enc(t, movImm(isa.O0, 5)), // after return
	}
	c, m := newCPU(t, DefaultConfig(), prog...)
	handler := []uint32{
		enc(t, movImm(isa.G1+1, 0xAB)), // %g2 = 0xAB
		enc(t, isa.Inst{Op: isa.OpJMPL, Rd: isa.G0, Rs1: isa.L2, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpRETT, Rs1: isa.L2, UseImm: true, Imm: 4}),
	}
	for i, w := range handler {
		binary.BigEndian.PutUint32(m.data[0x900+i*4:], w)
	}
	// ta(1) + handler(3) + resumed mov(1) = 5 steps.
	run(t, c, 5)
	if got := c.Reg(isa.G1 + 1); got != 0xAB {
		t.Errorf("handler did not run: %%g2 = %#x", got)
	}
	if got := c.Reg(isa.O0); got != 5 {
		t.Errorf("did not resume after trap: %%o0 = %d", got)
	}
	if c.PSR()&PSRET == 0 {
		t.Error("ET not restored by rett")
	}
}

func TestInterruptDelivery(t *testing.T) {
	irq := &fakeIRQ{level: 3}
	m := newFlat(64 << 10)
	// Spin loop at 0x1000.
	binary.BigEndian.PutUint32(m.data[0x1000:], enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Imm: 0}))
	binary.BigEndian.PutUint32(m.data[0x1004:], isa.NOP)
	c, err := New(DefaultConfig(), m, m, irq)
	if err != nil {
		t.Fatal(err)
	}
	c.psr |= PSRET
	c.SetPC(0x1000)
	run(t, c, 1)
	if irq.acked != 3 {
		t.Errorf("irq acked = %d, want 3", irq.acked)
	}
	if c.PC() != uint32(TrapInterruptBase+3)<<4 {
		t.Errorf("pc = %#x, want interrupt vector", c.PC())
	}
	if c.Stats().Interrupts != 1 {
		t.Errorf("Interrupts = %d", c.Stats().Interrupts)
	}
}

func TestInterruptMaskedByPIL(t *testing.T) {
	irq := &fakeIRQ{level: 3}
	m := newFlat(64 << 10)
	binary.BigEndian.PutUint32(m.data[0x1000:], isa.NOP)
	binary.BigEndian.PutUint32(m.data[0x1004:], isa.NOP)
	c, _ := New(DefaultConfig(), m, m, irq)
	c.psr |= PSRET | 5<<psrPILShift // PIL=5 masks level 3
	c.SetPC(0x1000)
	run(t, c, 1)
	if irq.acked != 0 {
		t.Error("masked interrupt was acked")
	}
	// Level 15 is never masked.
	irq.level = 15
	run(t, c, 1)
	if irq.acked != 15 {
		t.Errorf("level 15 not delivered: acked = %d", irq.acked)
	}
}

type fakeIRQ struct {
	level int
	acked int
}

func (f *fakeIRQ) Pending() int { return f.level }
func (f *fakeIRQ) Ack(l int)    { f.acked = l; f.level = 0 }

func TestMACExtension(t *testing.T) {
	// Without MAC: illegal instruction.
	trapped := uint8(0)
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpLQMAC, Rd: isa.O0, Rs1: isa.O0 + 1, Rs2: isa.O0 + 2}),
	)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	run(t, c, 1)
	if trapped != TrapIllegalInst {
		t.Errorf("LQMAC without MAC unit: trap = %#x", trapped)
	}
	// With MAC: rd += rs1*rs2, no extra mul latency.
	cfg := DefaultConfig()
	cfg.MAC = true
	c, _ = newCPU(t, cfg,
		enc(t, movImm(isa.O0, 100)),
		enc(t, movImm(isa.O0+1, 6)),
		enc(t, movImm(isa.O0+2, 7)),
		enc(t, isa.Inst{Op: isa.OpLQMAC, Rd: isa.O0, Rs1: isa.O0 + 1, Rs2: isa.O0 + 2}),
	)
	run(t, c, 4)
	if got := c.Reg(isa.O0); got != 142 {
		t.Errorf("lqmac = %d, want 142", got)
	}
}

func TestNoMulDivConfigTraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MulDiv = false
	trapped := uint8(0)
	c, _ := newCPU(t, cfg,
		enc(t, isa.Inst{Op: isa.OpUMUL, Rd: isa.O0, Rs1: isa.O0, Rs2: isa.O0}),
	)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	run(t, c, 1)
	if trapped != TrapIllegalInst {
		t.Errorf("umul without hardware: trap = %#x", trapped)
	}
}

func TestWRPSRValidatesCWP(t *testing.T) {
	trapped := uint8(0)
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpWRPSR, Rs1: isa.G0, UseImm: true, Imm: 0xEF}), // CWP=15 ≥ 8
	)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	run(t, c, 1)
	if trapped != TrapIllegalInst {
		t.Errorf("WRPSR with bad CWP: trap = %#x", trapped)
	}
}

func TestCycleAccounting(t *testing.T) {
	cfg := DefaultConfig()
	// ALU op: fetch(1) cycles.
	c, _ := newCPU(t, cfg, enc(t, movImm(isa.O0, 1)))
	run(t, c, 1)
	aluCycles := c.Cycles
	// Load: fetch(1) + access(1) + Load extra.
	c2, _ := newCPU(t, cfg, enc(t, isa.Inst{Op: isa.OpLD, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 0}))
	run(t, c2, 1)
	if c2.Cycles <= aluCycles {
		t.Errorf("load (%d cycles) not slower than ALU (%d)", c2.Cycles, aluCycles)
	}
	wantLoad := aluCycles + 1 + uint64(cfg.Timing.Load)
	if c2.Cycles != wantLoad {
		t.Errorf("load cycles = %d, want %d", c2.Cycles, wantLoad)
	}
	// Store slower than load.
	c3, _ := newCPU(t, cfg, enc(t, isa.Inst{Op: isa.OpST, Rd: isa.O0, Rs1: isa.G0, UseImm: true, Imm: 0}))
	run(t, c3, 1)
	if c3.Cycles <= c2.Cycles {
		t.Errorf("store (%d) not slower than load (%d)", c3.Cycles, c2.Cycles)
	}
	// Division much slower.
	c4, _ := newCPU(t, cfg, enc(t, isa.Inst{Op: isa.OpUDIV, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 3}))
	run(t, c4, 1)
	if c4.Cycles < uint64(cfg.Timing.Div) {
		t.Errorf("div cycles = %d", c4.Cycles)
	}
}

func TestTraceHooks(t *testing.T) {
	var execs, mems int
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.L0, 0x800)),
		enc(t, isa.Inst{Op: isa.OpLD, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpST, Rd: isa.O0, Rs1: isa.L0, UseImm: true, Imm: 4}),
	)
	var memWrites []bool
	c.OnExec = func(pc uint32, in isa.Inst) { execs++ }
	c.OnMem = func(addr uint32, size amba.Size, write bool) {
		mems++
		memWrites = append(memWrites, write)
	}
	run(t, c, 3)
	if execs != 3 {
		t.Errorf("OnExec fired %d times", execs)
	}
	if mems != 2 || !memWrites[1] || memWrites[0] {
		t.Errorf("OnMem fired %d times, writes=%v", mems, memWrites)
	}
}

func TestFlushCallsHook(t *testing.T) {
	called := false
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, isa.Inst{Op: isa.OpFLUSH, Rs1: isa.G0, UseImm: true, Imm: 0}),
	)
	c.FlushFn = func() (int, error) { called = true; return 10, nil }
	before := c.Cycles
	run(t, c, 1)
	if !called {
		t.Error("FLUSH did not invoke FlushFn")
	}
	if c.Cycles < before+10 {
		t.Error("flush cycles not charged")
	}
}

func TestConfigValidation(t *testing.T) {
	m := newFlat(64)
	for _, n := range []int{0, 1, 33, -4} {
		cfg := DefaultConfig()
		cfg.NWindows = n
		if _, err := New(cfg, m, m, nil); err == nil {
			t.Errorf("NWindows=%d accepted", n)
		}
	}
}

func TestResetState(t *testing.T) {
	c, _ := newCPU(t, DefaultConfig(), enc(t, movImm(isa.O0, 1)))
	run(t, c, 1)
	c.Reset()
	if c.PC() != 0 || c.NPC() != 4 {
		t.Errorf("pc/npc = %#x/%#x", c.PC(), c.NPC())
	}
	if c.PSR()&PSRS == 0 {
		t.Error("not supervisor after reset")
	}
	if c.PSR()&PSRET != 0 {
		t.Error("traps enabled after reset")
	}
	if c.Reg(isa.O0) != 0 {
		t.Error("registers not cleared")
	}
	if c.CWP() != 0 {
		t.Error("CWP not zero")
	}
}

func TestWindowStatePreservedAcrossWindows(t *testing.T) {
	// Values written in one window's locals survive a save/restore
	// round trip.
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(isa.L0, 0x11)),
		enc(t, isa.Inst{Op: isa.OpSAVE, Rd: isa.G0, Rs1: isa.G0, UseImm: true, Imm: 0}),
		enc(t, movImm(isa.L0, 0x22)),
		enc(t, isa.Inst{Op: isa.OpRESTORE}),
	)
	run(t, c, 4)
	if got := c.Reg(isa.L0); got != 0x11 {
		t.Errorf("%%l0 = %#x after round trip, want 0x11", got)
	}
}

func TestInstructionFetchFaultTraps(t *testing.T) {
	m := newFlat(64)
	c, _ := New(DefaultConfig(), m, m, nil)
	c.psr |= PSRET
	c.SetPC(0x100000) // way past memory
	trapped := uint8(0)
	c.OnTrap = func(tt uint8, pc uint32) { trapped = tt }
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if trapped != TrapIAccess {
		t.Errorf("trap = %#x, want instruction access", trapped)
	}
}
