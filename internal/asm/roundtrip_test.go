package asm

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"liquidarch/internal/isa"
)

// TestDisasmReassembleRoundTrip: for a large sample of encodable
// instructions, disassembling the word and re-assembling the text must
// reproduce the identical word. This pins the assembler's syntax to
// the disassembler's output (and both to the ISA encoding).
func TestDisasmReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const origin = 0x40001000

	reassemble := func(text string) (uint32, bool) {
		obj, err := AssembleAt("\t"+text+"\n", origin)
		if err != nil || len(obj.Code) < 4 {
			return 0, false
		}
		return binary.BigEndian.Uint32(obj.Code), true
	}

	checked, skipped := 0, 0
	for i := 0; i < 20000; i++ {
		w := rng.Uint32()
		in, err := isa.Decode(w)
		if err != nil {
			continue
		}
		// Canonicalize: re-encode first so reserved bits are zeroed
		// (the disassembler does not render them).
		cw, err := isa.Encode(in)
		if err != nil {
			continue
		}
		text := isa.Disassemble(cw, origin)
		// Branch/call targets outside the assembler's reach (they
		// render as absolute addresses, which reassemble fine) and
		// UNIMP render as data; both are fair game.
		got, ok := reassemble(text)
		if !ok {
			// The only acceptable non-reassemblable render is the
			// ".word" form for undecodable input, which cannot occur
			// here; anything else is a syntax drift bug.
			t.Fatalf("disassembly %q of %#08x does not reassemble", text, cw)
		}
		if got != cw && !sameSemantics(t, got, cw) {
			t.Fatalf("round trip drift: %#08x → %q → %#08x", cw, text, got)
		}
		checked++
	}
	if checked < 5000 {
		t.Fatalf("only %d instructions checked (%d skipped) — generator too narrow", checked, skipped)
	}
}

// sameSemantics reports whether two encodings decode to the same
// instruction, treating "+ %g0" (i=0, rs2=0) and "+ 0" (i=1, imm=0) as
// the identical second operand — both read as zero.
func sameSemantics(t *testing.T, a, b uint32) bool {
	t.Helper()
	da, err1 := isa.Decode(a)
	db, err2 := isa.Decode(b)
	if err1 != nil || err2 != nil {
		return false
	}
	norm := func(in isa.Inst) isa.Inst {
		in.Raw = 0
		if in.UseImm && in.Imm == 0 {
			in.UseImm = false
			in.Rs2 = 0
		}
		return in
	}
	return norm(da) == norm(db)
}

// TestDirectedRoundTrip covers the synthetic forms the random sweep
// rarely hits verbatim.
func TestDirectedRoundTrip(t *testing.T) {
	srcs := []string{
		"nop",
		"mov 7, %o0",
		"cmp %o0, %o1",
		"restore",
		"jmp %l1",
		"call %g1",
		"rd %psr, %l0",
		"wr %l0, %g0, %wim",
		"ta %g0 + 3",
		"flush %g0",
	}
	for _, src := range srcs {
		obj, err := Assemble("\t" + src + "\n")
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		w := binary.BigEndian.Uint32(obj.Code)
		text := isa.Disassemble(w, 0)
		obj2, err := Assemble("\t" + text + "\n")
		if err != nil {
			t.Fatalf("%q → %q: %v", src, text, err)
		}
		if got := binary.BigEndian.Uint32(obj2.Code); got != w {
			t.Errorf("%q → %#08x → %q → %#08x", src, w, text, got)
		}
	}
}
