package asm

import (
	"strings"

	"liquidarch/internal/isa"
)

// regNames maps operand spellings to register numbers.
var regNames = func() map[string]isa.Reg {
	m := make(map[string]isa.Reg, 40)
	groups := []struct {
		prefix string
		base   isa.Reg
	}{{"g", 0}, {"o", 8}, {"l", 16}, {"i", 24}}
	for _, g := range groups {
		for i := 0; i < 8; i++ {
			m["%"+g.prefix+string(rune('0'+i))] = g.base + isa.Reg(i)
		}
	}
	m["%sp"] = isa.SP
	m["%fp"] = isa.FP
	for i := 0; i < 32; i++ {
		m["%r"+itoa(i)] = isa.Reg(i)
	}
	return m
}()

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func parseReg(tok string) (isa.Reg, bool) {
	r, ok := regNames[strings.ToLower(strings.TrimSpace(tok))]
	return r, ok
}

// condTable maps branch/trap condition suffixes to codes. "" and "a"
// both mean always (plain "b" / "t").
var condTable = map[string]isa.Cond{
	"": isa.CondA, "a": isa.CondA, "n": isa.CondN,
	"e": isa.CondE, "z": isa.CondE, "ne": isa.CondNE, "nz": isa.CondNE,
	"le": isa.CondLE, "l": isa.CondL, "ge": isa.CondGE, "g": isa.CondG,
	"leu": isa.CondLEU, "gu": isa.CondGU, "cs": isa.CondCS, "cc": isa.CondCC,
	"lu": isa.CondCS, "geu": isa.CondCC,
	"neg": isa.CondNEG, "pos": isa.CondPOS, "vs": isa.CondVS, "vc": isa.CondVC,
}

// aluMnemonics maps 3-operand ALU mnemonics to ops.
var aluMnemonics = map[string]isa.Op{
	"add": isa.OpADD, "addcc": isa.OpADDcc, "addx": isa.OpADDX, "addxcc": isa.OpADDXcc,
	"sub": isa.OpSUB, "subcc": isa.OpSUBcc, "subx": isa.OpSUBX, "subxcc": isa.OpSUBXcc,
	"and": isa.OpAND, "andcc": isa.OpANDcc, "andn": isa.OpANDN, "andncc": isa.OpANDNcc,
	"or": isa.OpOR, "orcc": isa.OpORcc, "orn": isa.OpORN, "orncc": isa.OpORNcc,
	"xor": isa.OpXOR, "xorcc": isa.OpXORcc, "xnor": isa.OpXNOR, "xnorcc": isa.OpXNORcc,
	"sll": isa.OpSLL, "srl": isa.OpSRL, "sra": isa.OpSRA,
	"umul": isa.OpUMUL, "umulcc": isa.OpUMULcc, "smul": isa.OpSMUL, "smulcc": isa.OpSMULcc,
	"udiv": isa.OpUDIV, "udivcc": isa.OpUDIVcc, "sdiv": isa.OpSDIV, "sdivcc": isa.OpSDIVcc,
	"mulscc": isa.OpMULScc, "lqmac": isa.OpLQMAC,
}

var loadMnemonics = map[string]isa.Op{
	"ld": isa.OpLD, "ldub": isa.OpLDUB, "lduh": isa.OpLDUH,
	"ldsb": isa.OpLDSB, "ldsh": isa.OpLDSH, "ldd": isa.OpLDD,
	"swap": isa.OpSWAP, "ldstub": isa.OpLDSTUB,
}

var storeMnemonics = map[string]isa.Op{
	"st": isa.OpST, "stb": isa.OpSTB, "sth": isa.OpSTH, "std": isa.OpSTD,
}

// op2 is a parsed second operand: register or immediate expression.
type op2 struct {
	reg    isa.Reg
	imm    int32
	useImm bool
}

func (a *assembler) parseOp2(n int, tok string) (op2, error) {
	if r, ok := parseReg(tok); ok {
		return op2{reg: r}, nil
	}
	v, err := a.expr(n, tok)
	if err != nil {
		return op2{}, err
	}
	return op2{imm: int32(v), useImm: true}, nil
}

// parseAddr parses an address expression "rs1", "rs1+rs2", "rs1+imm",
// "rs1-imm" or "imm" (with or without surrounding brackets).
func (a *assembler) parseAddr(n int, tok string) (isa.Reg, op2, error) {
	tok = strings.TrimSpace(tok)
	if strings.HasPrefix(tok, "[") && strings.HasSuffix(tok, "]") {
		tok = strings.TrimSpace(tok[1 : len(tok)-1])
	}
	// Split on top-level + or - (but keep %hi(...)/(...) intact and
	// allow a leading sign on the immediate form).
	depth := 0
	for i := 0; i < len(tok); i++ {
		switch tok[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case '+', '-':
			if depth != 0 || i == 0 {
				continue
			}
			left := strings.TrimSpace(tok[:i])
			r, ok := parseReg(left)
			if !ok {
				continue // pure expression like "sym-4"
			}
			rest := strings.TrimSpace(tok[i:])
			if r2, ok := parseReg(strings.TrimPrefix(rest, "+")); ok {
				if tok[i] == '-' {
					return 0, op2{}, a.errf(n, "cannot subtract a register in address %q", tok)
				}
				return r, op2{reg: r2}, nil
			}
			// Keep a leading '-' (negative offset); drop a leading '+'.
			v, err := a.expr(n, strings.TrimSpace(strings.TrimPrefix(rest, "+")))
			if err != nil {
				return 0, op2{}, err
			}
			return r, op2{imm: int32(v), useImm: true}, nil
		}
	}
	if r, ok := parseReg(tok); ok {
		return r, op2{useImm: true}, nil
	}
	v, err := a.expr(n, tok)
	if err != nil {
		return 0, op2{}, err
	}
	return isa.G0, op2{imm: int32(v), useImm: true}, nil
}

// encodeEmit encodes in (mapping range errors to diagnostics) and
// emits the word.
func (a *assembler) encodeEmit(n int, in isa.Inst) error {
	if a.pass == 1 {
		// Sizes are fixed; skip encoding so unresolved forward
		// references don't produce spurious range errors.
		a.emit(0)
		return nil
	}
	w, err := isa.Encode(in)
	if err != nil {
		return a.errf(n, "%v", err)
	}
	a.emit(w)
	return nil
}

func f3(op isa.Op, rd, rs1 isa.Reg, o op2) isa.Inst {
	return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: o.reg, Imm: o.imm, UseImm: o.useImm}
}

// instruction assembles one machine or synthetic instruction.
func (a *assembler) instruction(n int, mnem, rest string) error {
	ops := splitOperands(rest)
	base, flag, _ := strings.Cut(mnem, ",")
	annul := flag == "a"

	// 3-operand ALU group.
	if op, ok := aluMnemonics[base]; ok && flag == "" {
		if len(ops) != 3 {
			return a.errf(n, "%s wants 3 operands, got %d", base, len(ops))
		}
		rs1, ok := parseReg(ops[0])
		if !ok {
			return a.errf(n, "%s: bad rs1 %q", base, ops[0])
		}
		o2, err := a.parseOp2(n, ops[1])
		if err != nil {
			return err
		}
		rd, ok := parseReg(ops[2])
		if !ok {
			return a.errf(n, "%s: bad rd %q", base, ops[2])
		}
		return a.encodeEmit(n, f3(op, rd, rs1, o2))
	}

	if op, ok := loadMnemonics[base]; ok && flag == "" {
		if len(ops) != 2 || !strings.HasPrefix(strings.TrimSpace(ops[0]), "[") {
			return a.errf(n, "%s wants \"[addr], rd\"", base)
		}
		rs1, o2, err := a.parseAddr(n, ops[0])
		if err != nil {
			return err
		}
		rd, ok := parseReg(ops[1])
		if !ok {
			return a.errf(n, "%s: bad rd %q", base, ops[1])
		}
		return a.encodeEmit(n, f3(op, rd, rs1, o2))
	}

	if op, ok := storeMnemonics[base]; ok && flag == "" {
		if len(ops) != 2 || !strings.HasPrefix(strings.TrimSpace(ops[1]), "[") {
			return a.errf(n, "%s wants \"rd, [addr]\"", base)
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return a.errf(n, "%s: bad source %q", base, ops[0])
		}
		rs1, o2, err := a.parseAddr(n, ops[1])
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(op, rd, rs1, o2))
	}

	// Branches: b<cond>[,a] target.
	if strings.HasPrefix(base, "b") && len(base) <= 4 {
		if cond, ok := condTable[base[1:]]; ok {
			if len(ops) != 1 {
				return a.errf(n, "%s wants a target", mnem)
			}
			target, err := a.expr(n, ops[0])
			if err != nil {
				return err
			}
			disp := int32(target-a.loc) / 4
			return a.encodeEmit(n, isa.Inst{Op: isa.OpBicc, Cond: cond, Annul: annul, Imm: disp})
		}
	}

	// Traps: t<cond> number.
	if strings.HasPrefix(base, "t") && flag == "" {
		if cond, ok := condTable[base[1:]]; ok && base != "tst" {
			if len(ops) != 1 {
				return a.errf(n, "%s wants a trap number", base)
			}
			rs1, o2, err := a.parseAddr(n, ops[0])
			if err != nil {
				return err
			}
			return a.encodeEmit(n, isa.Inst{Op: isa.OpTicc, Cond: cond, Rs1: rs1, Rs2: o2.reg, Imm: o2.imm, UseImm: o2.useImm})
		}
	}

	switch base {
	case "nop":
		a.emit(isa.NOP)
		return nil

	case "sethi":
		if len(ops) != 2 {
			return a.errf(n, "sethi wants \"imm22, rd\"")
		}
		v, err := a.expr(n, ops[0])
		if err != nil {
			return err
		}
		rd, ok := parseReg(ops[1])
		if !ok {
			return a.errf(n, "sethi: bad rd %q", ops[1])
		}
		return a.encodeEmit(n, isa.Inst{Op: isa.OpSETHI, Rd: rd, Imm: int32(v & 0x3FFFFF)})

	case "set":
		// Always two words (sethi+or) so sizes are pass-stable.
		if len(ops) != 2 {
			return a.errf(n, "set wants \"value, rd\"")
		}
		v, err := a.expr(n, ops[0])
		if err != nil {
			return err
		}
		rd, ok := parseReg(ops[1])
		if !ok {
			return a.errf(n, "set: bad rd %q", ops[1])
		}
		if err := a.encodeEmit(n, isa.Inst{Op: isa.OpSETHI, Rd: rd, Imm: int32(v >> 10)}); err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpOR, rd, rd, op2{imm: int32(v & 0x3FF), useImm: true}))

	case "mov":
		if len(ops) != 2 {
			return a.errf(n, "mov wants 2 operands")
		}
		// mov to/from special registers.
		if dst, ok := specialReg(ops[1]); ok {
			o2, err := a.parseOp2(n, ops[0])
			if err != nil {
				return err
			}
			return a.encodeEmit(n, f3(dst, 0, isa.G0, o2))
		}
		rd, ok := parseReg(ops[1])
		if !ok {
			return a.errf(n, "mov: bad destination %q", ops[1])
		}
		if src, ok := specialRegRead(ops[0]); ok {
			return a.encodeEmit(n, isa.Inst{Op: src, Rd: rd})
		}
		o2, err := a.parseOp2(n, ops[0])
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpOR, rd, isa.G0, o2))

	case "rd":
		if len(ops) != 2 {
			return a.errf(n, "rd wants \"%%spec, rd\"")
		}
		src, ok := specialRegRead(ops[0])
		if !ok {
			return a.errf(n, "rd: bad special register %q", ops[0])
		}
		rd, ok := parseReg(ops[1])
		if !ok {
			return a.errf(n, "rd: bad rd %q", ops[1])
		}
		return a.encodeEmit(n, isa.Inst{Op: src, Rd: rd})

	case "wr":
		var rs1 isa.Reg
		var o2v op2
		var dst string
		switch len(ops) {
		case 2: // wr rs/imm, %spec
			o, err := a.parseOp2(n, ops[0])
			if err != nil {
				return err
			}
			if !o.useImm {
				rs1, o2v = o.reg, op2{useImm: true}
			} else {
				rs1, o2v = isa.G0, o
			}
			dst = ops[1]
		case 3: // wr rs1, rs2/imm, %spec
			r, ok := parseReg(ops[0])
			if !ok {
				return a.errf(n, "wr: bad rs1 %q", ops[0])
			}
			o, err := a.parseOp2(n, ops[1])
			if err != nil {
				return err
			}
			rs1, o2v, dst = r, o, ops[2]
		default:
			return a.errf(n, "wr wants 2 or 3 operands")
		}
		op, ok := specialReg(dst)
		if !ok {
			return a.errf(n, "wr: bad special register %q", dst)
		}
		return a.encodeEmit(n, f3(op, 0, rs1, o2v))

	case "cmp":
		if len(ops) != 2 {
			return a.errf(n, "cmp wants 2 operands")
		}
		rs1, ok := parseReg(ops[0])
		if !ok {
			return a.errf(n, "cmp: bad rs1 %q", ops[0])
		}
		o2, err := a.parseOp2(n, ops[1])
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpSUBcc, isa.G0, rs1, o2))

	case "tst":
		if len(ops) != 1 {
			return a.errf(n, "tst wants 1 operand")
		}
		rs, ok := parseReg(ops[0])
		if !ok {
			return a.errf(n, "tst: bad register %q", ops[0])
		}
		return a.encodeEmit(n, f3(isa.OpORcc, isa.G0, rs, op2{reg: isa.G0}))

	case "btst":
		if len(ops) != 2 {
			return a.errf(n, "btst wants \"mask, reg\"")
		}
		rs1, ok := parseReg(ops[1])
		if !ok {
			return a.errf(n, "btst: bad register %q", ops[1])
		}
		o2, err := a.parseOp2(n, ops[0])
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpANDcc, isa.G0, rs1, o2))

	case "clr":
		if len(ops) != 1 {
			return a.errf(n, "clr wants 1 operand")
		}
		if strings.HasPrefix(strings.TrimSpace(ops[0]), "[") {
			rs1, o2, err := a.parseAddr(n, ops[0])
			if err != nil {
				return err
			}
			return a.encodeEmit(n, f3(isa.OpST, isa.G0, rs1, o2))
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return a.errf(n, "clr: bad register %q", ops[0])
		}
		return a.encodeEmit(n, f3(isa.OpOR, rd, isa.G0, op2{reg: isa.G0}))

	case "inc", "dec":
		var rd isa.Reg
		amt := int32(1)
		switch len(ops) {
		case 1:
			r, ok := parseReg(ops[0])
			if !ok {
				return a.errf(n, "%s: bad register %q", base, ops[0])
			}
			rd = r
		case 2:
			v, err := a.expr(n, ops[0])
			if err != nil {
				return err
			}
			r, ok := parseReg(ops[1])
			if !ok {
				return a.errf(n, "%s: bad register %q", base, ops[1])
			}
			rd, amt = r, int32(v)
		default:
			return a.errf(n, "%s wants 1 or 2 operands", base)
		}
		op := isa.OpADD
		if base == "dec" {
			op = isa.OpSUB
		}
		return a.encodeEmit(n, f3(op, rd, rd, op2{imm: amt, useImm: true}))

	case "not":
		rs, rd, err := a.oneOrTwoRegs(n, base, ops)
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpXNOR, rd, rs, op2{reg: isa.G0}))

	case "neg":
		rs, rd, err := a.oneOrTwoRegs(n, base, ops)
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpSUB, rd, isa.G0, op2{reg: rs}))

	case "jmp":
		if len(ops) != 1 {
			return a.errf(n, "jmp wants an address")
		}
		rs1, o2, err := a.parseAddr(n, ops[0])
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpJMPL, isa.G0, rs1, o2))

	case "jmpl":
		if len(ops) != 2 {
			return a.errf(n, "jmpl wants \"addr, rd\"")
		}
		rs1, o2, err := a.parseAddr(n, ops[0])
		if err != nil {
			return err
		}
		rd, ok := parseReg(ops[1])
		if !ok {
			return a.errf(n, "jmpl: bad rd %q", ops[1])
		}
		return a.encodeEmit(n, f3(isa.OpJMPL, rd, rs1, o2))

	case "call":
		if len(ops) != 1 {
			return a.errf(n, "call wants a target")
		}
		// Register or register+offset targets use the jmpl form.
		if strings.Contains(ops[0], "%") {
			rs1, o2, err := a.parseAddr(n, ops[0])
			if err != nil {
				return err
			}
			return a.encodeEmit(n, f3(isa.OpJMPL, isa.O7, rs1, o2))
		}
		target, err := a.expr(n, ops[0])
		if err != nil {
			return err
		}
		return a.encodeEmit(n, isa.Inst{Op: isa.OpCALL, Imm: int32(target-a.loc) / 4})

	case "ret":
		return a.encodeEmit(n, f3(isa.OpJMPL, isa.G0, isa.I7, op2{imm: 8, useImm: true}))
	case "retl":
		return a.encodeEmit(n, f3(isa.OpJMPL, isa.G0, isa.O7, op2{imm: 8, useImm: true}))

	case "rett":
		if len(ops) != 1 {
			return a.errf(n, "rett wants an address")
		}
		rs1, o2, err := a.parseAddr(n, ops[0])
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpRETT, isa.G0, rs1, o2))

	case "save", "restore":
		op := isa.OpSAVE
		if base == "restore" {
			op = isa.OpRESTORE
		}
		switch len(ops) {
		case 0:
			return a.encodeEmit(n, isa.Inst{Op: op})
		case 3:
			rs1, ok := parseReg(ops[0])
			if !ok {
				return a.errf(n, "%s: bad rs1 %q", base, ops[0])
			}
			o2, err := a.parseOp2(n, ops[1])
			if err != nil {
				return err
			}
			rd, ok := parseReg(ops[2])
			if !ok {
				return a.errf(n, "%s: bad rd %q", base, ops[2])
			}
			return a.encodeEmit(n, f3(op, rd, rs1, o2))
		default:
			return a.errf(n, "%s wants 0 or 3 operands", base)
		}

	case "flush":
		if len(ops) != 1 {
			return a.errf(n, "flush wants an address")
		}
		rs1, o2, err := a.parseAddr(n, ops[0])
		if err != nil {
			return err
		}
		return a.encodeEmit(n, f3(isa.OpFLUSH, isa.G0, rs1, o2))

	case "unimp":
		v := uint32(0)
		if len(ops) == 1 {
			x, err := a.expr(n, ops[0])
			if err != nil {
				return err
			}
			v = x
		}
		return a.encodeEmit(n, isa.Inst{Op: isa.OpUNIMP, Imm: int32(v & 0x3FFFFF)})
	}

	return a.errf(n, "unknown instruction %q", mnem)
}

func (a *assembler) oneOrTwoRegs(n int, base string, ops []string) (rs, rd isa.Reg, err error) {
	switch len(ops) {
	case 1:
		r, ok := parseReg(ops[0])
		if !ok {
			return 0, 0, a.errf(n, "%s: bad register %q", base, ops[0])
		}
		return r, r, nil
	case 2:
		r1, ok := parseReg(ops[0])
		if !ok {
			return 0, 0, a.errf(n, "%s: bad register %q", base, ops[0])
		}
		r2, ok := parseReg(ops[1])
		if !ok {
			return 0, 0, a.errf(n, "%s: bad register %q", base, ops[1])
		}
		return r1, r2, nil
	default:
		return 0, 0, a.errf(n, "%s wants 1 or 2 operands", base)
	}
}

// specialReg maps a writable special register name to its WR op.
func specialReg(tok string) (isa.Op, bool) {
	switch strings.ToLower(strings.TrimSpace(tok)) {
	case "%y":
		return isa.OpWRY, true
	case "%psr":
		return isa.OpWRPSR, true
	case "%wim":
		return isa.OpWRWIM, true
	case "%tbr":
		return isa.OpWRTBR, true
	}
	return 0, false
}

// specialRegRead maps a readable special register name to its RD op.
func specialRegRead(tok string) (isa.Op, bool) {
	switch strings.ToLower(strings.TrimSpace(tok)) {
	case "%y":
		return isa.OpRDY, true
	case "%psr":
		return isa.OpRDPSR, true
	case "%wim":
		return isa.OpRDWIM, true
	case "%tbr":
		return isa.OpRDTBR, true
	}
	return 0, false
}
