package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"liquidarch/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Object {
	t.Helper()
	o, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v\nsource:\n%s", err, src)
	}
	return o
}

func words(o *Object) []uint32 {
	out := make([]uint32, len(o.Code)/4)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(o.Code[i*4:])
	}
	return out
}

func TestBasicEncodings(t *testing.T) {
	cases := []struct {
		src  string
		want isa.Inst
	}{
		{"add %o0, %o1, %o2", isa.Inst{Op: isa.OpADD, Rd: 10, Rs1: 8, Rs2: 9}},
		{"add %o0, 4, %o2", isa.Inst{Op: isa.OpADD, Rd: 10, Rs1: 8, UseImm: true, Imm: 4}},
		{"sub %sp, -96, %sp", isa.Inst{Op: isa.OpSUB, Rd: isa.SP, Rs1: isa.SP, UseImm: true, Imm: -96}},
		{"mov 7, %o0", isa.Inst{Op: isa.OpOR, Rd: 8, Rs1: 0, UseImm: true, Imm: 7}},
		{"mov %o1, %o0", isa.Inst{Op: isa.OpOR, Rd: 8, Rs1: 0, Rs2: 9}},
		{"cmp %o0, 3", isa.Inst{Op: isa.OpSUBcc, Rd: 0, Rs1: 8, UseImm: true, Imm: 3}},
		{"tst %o0", isa.Inst{Op: isa.OpORcc, Rd: 0, Rs1: 8, Rs2: 0}},
		{"clr %o0", isa.Inst{Op: isa.OpOR, Rd: 8, Rs1: 0, Rs2: 0}},
		{"inc %o0", isa.Inst{Op: isa.OpADD, Rd: 8, Rs1: 8, UseImm: true, Imm: 1}},
		{"dec 4, %o0", isa.Inst{Op: isa.OpSUB, Rd: 8, Rs1: 8, UseImm: true, Imm: 4}},
		{"not %o0", isa.Inst{Op: isa.OpXNOR, Rd: 8, Rs1: 8, Rs2: 0}},
		{"neg %o1, %o0", isa.Inst{Op: isa.OpSUB, Rd: 8, Rs1: 0, Rs2: 9}},
		{"ld [%sp + 64], %o0", isa.Inst{Op: isa.OpLD, Rd: 8, Rs1: isa.SP, UseImm: true, Imm: 64}},
		{"ld [%g1], %o0", isa.Inst{Op: isa.OpLD, Rd: 8, Rs1: 1, UseImm: true, Imm: 0}},
		{"ld [%g1 + %g2], %o0", isa.Inst{Op: isa.OpLD, Rd: 8, Rs1: 1, Rs2: 2}},
		{"ld [%fp - 8], %o0", isa.Inst{Op: isa.OpLD, Rd: 8, Rs1: isa.FP, UseImm: true, Imm: -8}},
		{"st %o0, [%sp]", isa.Inst{Op: isa.OpST, Rd: 8, Rs1: isa.SP, UseImm: true, Imm: 0}},
		{"std %i0, [%sp + 56]", isa.Inst{Op: isa.OpSTD, Rd: 24, Rs1: isa.SP, UseImm: true, Imm: 56}},
		{"swap [%g1], %o0", isa.Inst{Op: isa.OpSWAP, Rd: 8, Rs1: 1, UseImm: true, Imm: 0}},
		{"jmp %l1", isa.Inst{Op: isa.OpJMPL, Rd: 0, Rs1: 17, UseImm: true, Imm: 0}},
		{"jmpl %o7 + 8, %g0", isa.Inst{Op: isa.OpJMPL, Rd: 0, Rs1: 15, UseImm: true, Imm: 8}},
		{"call %g1", isa.Inst{Op: isa.OpJMPL, Rd: 15, Rs1: 1, UseImm: true, Imm: 0}},
		{"ret", isa.Inst{Op: isa.OpJMPL, Rd: 0, Rs1: 31, UseImm: true, Imm: 8}},
		{"retl", isa.Inst{Op: isa.OpJMPL, Rd: 0, Rs1: 15, UseImm: true, Imm: 8}},
		{"rett %l2 + 4", isa.Inst{Op: isa.OpRETT, Rd: 0, Rs1: 18, UseImm: true, Imm: 4}},
		{"save %sp, -96, %sp", isa.Inst{Op: isa.OpSAVE, Rd: isa.SP, Rs1: isa.SP, UseImm: true, Imm: -96}},
		{"restore", isa.Inst{Op: isa.OpRESTORE}},
		{"rd %psr, %l0", isa.Inst{Op: isa.OpRDPSR, Rd: 16}},
		{"wr %l0, %wim", isa.Inst{Op: isa.OpWRWIM, Rs1: 16, UseImm: true, Imm: 0}},
		{"wr %l0, 4, %psr", isa.Inst{Op: isa.OpWRPSR, Rs1: 16, UseImm: true, Imm: 4}},
		{"mov %psr, %l0", isa.Inst{Op: isa.OpRDPSR, Rd: 16}},
		{"mov 2, %wim", isa.Inst{Op: isa.OpWRWIM, Rs1: 0, UseImm: true, Imm: 2}},
		{"ta 3", isa.Inst{Op: isa.OpTicc, Cond: isa.CondA, Rs1: 0, UseImm: true, Imm: 3}},
		{"flush %g1", isa.Inst{Op: isa.OpFLUSH, Rd: 0, Rs1: 1, UseImm: true, Imm: 0}},
		{"umul %o0, %o1, %o2", isa.Inst{Op: isa.OpUMUL, Rd: 10, Rs1: 8, Rs2: 9}},
		{"sll %o0, 2, %o0", isa.Inst{Op: isa.OpSLL, Rd: 8, Rs1: 8, UseImm: true, Imm: 2}},
		{"lqmac %o1, %o2, %o0", isa.Inst{Op: isa.OpLQMAC, Rd: 8, Rs1: 9, Rs2: 10}},
		{"btst 1, %o0", isa.Inst{Op: isa.OpANDcc, Rd: 0, Rs1: 8, UseImm: true, Imm: 1}},
		{"unimp", isa.Inst{Op: isa.OpUNIMP, Imm: 0}},
	}
	for _, c := range cases {
		o := mustAssemble(t, c.src)
		if len(o.Code) != 4 {
			t.Errorf("%q assembled to %d bytes", c.src, len(o.Code))
			continue
		}
		want, err := isa.Encode(c.want)
		if err != nil {
			t.Fatalf("encode want for %q: %v", c.src, err)
		}
		got := binary.BigEndian.Uint32(o.Code)
		if got != want {
			t.Errorf("%q = %#08x (%s), want %#08x (%s)", c.src,
				got, isa.Disassemble(got, 0), want, isa.Disassemble(want, 0))
		}
	}
}

func TestNopEncoding(t *testing.T) {
	o := mustAssemble(t, "nop")
	if got := binary.BigEndian.Uint32(o.Code); got != isa.NOP {
		t.Errorf("nop = %#08x", got)
	}
}

func TestSetExpandsToTwoWords(t *testing.T) {
	o := mustAssemble(t, "set 0x40000000, %g1")
	w := words(o)
	if len(w) != 2 {
		t.Fatalf("set produced %d words", len(w))
	}
	in0, _ := isa.Decode(w[0])
	in1, _ := isa.Decode(w[1])
	if in0.Op != isa.OpSETHI || uint32(in0.Imm)<<10 != 0x40000000 {
		t.Errorf("first word %v", in0)
	}
	if in1.Op != isa.OpOR || in1.Imm != 0 {
		t.Errorf("second word %v", in1)
	}
}

func TestBranchDisplacement(t *testing.T) {
	src := `
loop:	nop
	nop
	bne loop
	nop
	be,a done
	nop
done:	nop
`
	o := mustAssemble(t, src)
	w := words(o)
	// bne at offset 8 → disp (0-8)/4 = -2.
	in, _ := isa.Decode(w[2])
	if in.Op != isa.OpBicc || in.Cond != isa.CondNE || in.Imm != -2 || in.Annul {
		t.Errorf("bne = %+v", in)
	}
	// be,a at offset 16 → disp (24-16)/4 = 2, annul set.
	in, _ = isa.Decode(w[4])
	if in.Cond != isa.CondE || in.Imm != 2 || !in.Annul {
		t.Errorf("be,a = %+v", in)
	}
}

func TestCallDisplacementAndSymbols(t *testing.T) {
	src := `
start:	call func
	nop
	nop
func:	retl
	nop
`
	o, err := AssembleAt(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	w := words(o)
	in, _ := isa.Decode(w[0])
	if in.Op != isa.OpCALL || in.Imm != 3 {
		t.Errorf("call = %+v, want disp 3", in)
	}
	if v, ok := o.Symbol("func"); !ok || v != 0x100C {
		t.Errorf("func = %#x, %v", v, ok)
	}
	if v, ok := o.Symbol("start"); !ok || v != 0x1000 {
		t.Errorf("start = %#x, %v", v, ok)
	}
}

func TestDirectives(t *testing.T) {
	src := `
	.word 0x11223344, 5
	.half 0xAABB
	.byte 1, 2
	.align 4
	.ascii "hi"
	.asciz "x"
	.space 3
	.byte 0xFF
`
	o := mustAssemble(t, src)
	want := []byte{
		0x11, 0x22, 0x33, 0x44,
		0, 0, 0, 5,
		0xAA, 0xBB,
		1, 2,
		'h', 'i',
		'x', 0,
		0, 0, 0,
		0xFF,
	}
	if len(o.Code) != len(want) {
		t.Fatalf("size = %d, want %d (% x)", len(o.Code), len(want), o.Code)
	}
	for i := range want {
		if o.Code[i] != want[i] {
			t.Errorf("byte %d = %#x, want %#x", i, o.Code[i], want[i])
		}
	}
}

func TestOrgPadding(t *testing.T) {
	o := mustAssemble(t, ".word 1\n.org 0x10\n.word 2\n")
	if len(o.Code) != 0x14 {
		t.Fatalf("size = %d", len(o.Code))
	}
	if got := binary.BigEndian.Uint32(o.Code[0x10:]); got != 2 {
		t.Errorf("word at 0x10 = %d", got)
	}
}

func TestHiLoOperators(t *testing.T) {
	src := `
	sethi %hi(0xDEADBEEF), %g1
	or %g1, %lo(0xDEADBEEF), %g1
`
	o := mustAssemble(t, src)
	w := words(o)
	in0, _ := isa.Decode(w[0])
	in1, _ := isa.Decode(w[1])
	if uint32(in0.Imm) != 0xDEADBEEF>>10 {
		t.Errorf("%%hi = %#x", in0.Imm)
	}
	if uint32(in1.Imm) != 0xDEADBEEF&0x3FF {
		t.Errorf("%%lo = %#x", in1.Imm)
	}
}

func TestEquAndAssignment(t *testing.T) {
	src := `
POLL = 0x40000000
	.equ OFFSET, 16
	set POLL + OFFSET, %g1
`
	o := mustAssemble(t, src)
	w := words(o)
	in0, _ := isa.Decode(w[0])
	in1, _ := isa.Decode(w[1])
	v := uint32(in0.Imm)<<10 | uint32(in1.Imm)
	if v != 0x40000010 {
		t.Errorf("set value = %#x", v)
	}
}

func TestForwardReferences(t *testing.T) {
	src := `
	ba end
	nop
	.word end
end:	nop
`
	o := mustAssemble(t, src)
	w := words(o)
	in, _ := isa.Decode(w[0])
	if in.Imm != 3 {
		t.Errorf("forward branch disp = %d, want 3", in.Imm)
	}
	if w[2] != 12 {
		t.Errorf(".word end = %d, want 12", w[2])
	}
}

func TestDotSymbol(t *testing.T) {
	o := mustAssemble(t, "nop\nhere: ba .\nnop\n")
	w := words(o)
	in, _ := isa.Decode(w[1])
	if in.Imm != 0 {
		t.Errorf("ba . disp = %d, want 0", in.Imm)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus %o0", "unknown instruction"},
		{".bogus 1", "unknown directive"},
		{"add %o0, %o1", "3 operands"},
		{"add %q0, %o1, %o2", "bad rs1"},
		{"ld %o0, %o1", ""}, // bad but must error somehow
		{"mov 99999999, %o0", "simm13"},
		{"ba nowhere", "undefined symbol"},
		{"x: nop\nx: nop", "duplicate label"},
		{".org 8\n.org 4", "behind"},
		{".align 3", "power of two"},
		{".ascii hi", "quoted"},
		{"set 1", "set wants"},
		{".word 0x1FFFFFFFF", "32 bits"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%q assembled without error", c.src)
			continue
		}
		if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q error %q does not mention %q", c.src, err, c.frag)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n")
	if err == nil {
		t.Fatal("no error")
	}
	var ae *Error
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q lacks line number", err)
	}
	_ = ae
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
	! full line comment
	nop ! trailing
	// slash comment
	nop // another
`
	o := mustAssemble(t, src)
	if len(o.Code) != 8 {
		t.Errorf("size = %d, want 8", len(o.Code))
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	o := mustAssemble(t, "a: b: nop\n")
	va, _ := o.Symbol("a")
	vb, ok := o.Symbol("b")
	if !ok || va != vb {
		t.Errorf("a=%#x b=%#x ok=%v", va, vb, ok)
	}
}
