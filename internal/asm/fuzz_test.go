package asm

import (
	"math/rand"
	"strings"
	"testing"
)

// TestAssemblerNeverPanics feeds the assembler random garbage built
// from its own token vocabulary: every input must either assemble or
// return an error — never panic or hang.
func TestAssemblerNeverPanics(t *testing.T) {
	vocab := []string{
		"add", "ld", "st", "set", "mov", "ba", "call", "save", ".word",
		".org", ".align", ".ascii", "%o0", "%g1", "%sp", "[", "]", ",",
		"+", "-", "0x10", "42", "label:", "label", "%hi(", ")", "%lo(",
		"\"str\"", "!", "\n", "\t", " ", "=", ".equ", "nop", "wr", "%psr",
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		n := rng.Intn(30)
		for j := 0; j < n; j++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			if rng.Intn(3) == 0 {
				b.WriteByte(' ')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("assembler panicked on %q: %v", src, r)
				}
			}()
			Assemble(src) //nolint:errcheck — error or success both fine
		}()
	}
}

// TestAssemblerRandomBytes: raw binary garbage, same guarantee.
func TestAssemblerRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		raw := make([]byte, rng.Intn(200))
		rng.Read(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("assembler panicked on random bytes: %v", r)
				}
			}()
			Assemble(string(raw)) //nolint:errcheck
		}()
	}
}
