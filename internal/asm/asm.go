// Package asm implements a two-pass SPARC V8 assembler for the Liquid
// Architecture toolchain. It replaces the binutils GAS step of the
// paper's flow (§5: "Compile w/ GCC, Assemble w/ GAS, Link w/ LD…") and
// is used both by the mini-C compiler back end and to build the
// modified LEON boot ROM of Fig. 5.
//
// Supported syntax (GAS-flavoured):
//
//	label:  add %o0, 4, %o1      ! comment
//	        set 0x40000000, %g1
//	        ld [%g1 + 8], %o0
//	        bne,a loop
//	        .word 1, 2, 3
//	        .org 0x1000
//
// Synthetic instructions: mov, set, cmp, tst, clr, inc, dec, not, neg,
// jmp, call (register form), ret, retl, nop, b<cond>[,a], t<cond>,
// rd/wr of %psr %wim %tbr %y, and %hi()/%lo() operand expressions.
package asm

import (
	"fmt"
	"strings"
)

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// Object is the output of assembly: a flat big-endian image starting at
// Origin, plus the symbol table.
type Object struct {
	Origin  uint32
	Code    []byte
	Symbols map[string]uint32
}

// Symbol returns the address of a defined symbol.
func (o *Object) Symbol(name string) (uint32, bool) {
	v, ok := o.Symbols[name]
	return v, ok
}

// Size returns the image size in bytes.
func (o *Object) Size() int { return len(o.Code) }

// Assemble assembles src with origin 0.
func Assemble(src string) (*Object, error) { return AssembleAt(src, 0) }

// AssembleAt assembles src with the given load origin. All label
// addresses are absolute.
func AssembleAt(src string, origin uint32) (*Object, error) {
	a := &assembler{origin: origin, symbols: make(map[string]uint32)}
	lines := splitLines(src)
	// Pass 1: sizes and label addresses.
	a.pass = 1
	a.loc = origin
	for i, ln := range lines {
		if err := a.line(i+1, ln); err != nil {
			return nil, err
		}
	}
	// Pass 2: encoding.
	a.pass = 2
	a.loc = origin
	a.out = make([]byte, 0, a.maxLoc-origin)
	for i, ln := range lines {
		if err := a.line(i+1, ln); err != nil {
			return nil, err
		}
	}
	return &Object{Origin: origin, Code: a.out, Symbols: a.symbols}, nil
}

type assembler struct {
	origin  uint32
	pass    int
	loc     uint32
	maxLoc  uint32
	out     []byte
	symbols map[string]uint32
}

// splitLines splits source into logical lines, stripping comments.
func splitLines(src string) []string {
	raw := strings.Split(src, "\n")
	out := make([]string, len(raw))
	for i, ln := range raw {
		if j := strings.IndexAny(ln, "!"); j >= 0 {
			ln = ln[:j]
		}
		if j := strings.Index(ln, "//"); j >= 0 {
			ln = ln[:j]
		}
		out[i] = strings.TrimSpace(ln)
	}
	return out
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// advance moves the location counter and, in pass 2, emits bytes.
func (a *assembler) emit(words ...uint32) {
	if a.pass == 2 {
		for _, w := range words {
			a.out = append(a.out, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
		}
	}
	a.loc += uint32(len(words)) * 4
	if a.loc > a.maxLoc {
		a.maxLoc = a.loc
	}
}

func (a *assembler) emitBytes(b ...byte) {
	if a.pass == 2 {
		a.out = append(a.out, b...)
	}
	a.loc += uint32(len(b))
	if a.loc > a.maxLoc {
		a.maxLoc = a.loc
	}
}

// line assembles one logical line.
func (a *assembler) line(n int, ln string) error {
	// Labels (possibly several) prefix the statement.
	for {
		j := strings.Index(ln, ":")
		if j < 0 {
			break
		}
		name := strings.TrimSpace(ln[:j])
		if !isIdent(name) {
			break // ':' inside something else
		}
		if a.pass == 1 {
			if _, dup := a.symbols[name]; dup {
				return a.errf(n, "duplicate label %q", name)
			}
			a.symbols[name] = a.loc
		}
		ln = strings.TrimSpace(ln[j+1:])
	}
	if ln == "" {
		return nil
	}
	// name = value assignment.
	if j := strings.Index(ln, "="); j > 0 && isIdent(strings.TrimSpace(ln[:j])) {
		name := strings.TrimSpace(ln[:j])
		if a.pass == 1 {
			v, err := a.expr(n, strings.TrimSpace(ln[j+1:]))
			if err != nil {
				return err
			}
			a.symbols[name] = v
		}
		return nil
	}
	mnem, rest, _ := strings.Cut(ln, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(mnem, ".") {
		return a.directive(n, mnem, rest)
	}
	return a.instruction(n, mnem, rest)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// directive handles assembler directives.
func (a *assembler) directive(n int, name, rest string) error {
	switch name {
	case ".org":
		v, err := a.exprStrict(n, rest)
		if err != nil {
			return err
		}
		if v < a.loc {
			return a.errf(n, ".org %#x is behind location counter %#x", v, a.loc)
		}
		a.emitBytes(make([]byte, v-a.loc)...)
		return nil
	case ".align":
		v, err := a.exprStrict(n, rest)
		if err != nil {
			return err
		}
		if v == 0 || v&(v-1) != 0 {
			return a.errf(n, ".align %d is not a power of two", v)
		}
		pad := (v - a.loc%v) % v
		a.emitBytes(make([]byte, pad)...)
		return nil
	case ".word", ".half", ".byte":
		for _, f := range splitOperands(rest) {
			v, err := a.expr(n, f)
			if err != nil {
				return err
			}
			switch name {
			case ".word":
				a.emit(v)
			case ".half":
				a.emitBytes(byte(v>>8), byte(v))
			default:
				a.emitBytes(byte(v))
			}
		}
		return nil
	case ".ascii", ".asciz":
		s, err := unquote(rest)
		if err != nil {
			return a.errf(n, "%v", err)
		}
		a.emitBytes([]byte(s)...)
		if name == ".asciz" {
			a.emitBytes(0)
		}
		return nil
	case ".space", ".skip":
		v, err := a.exprStrict(n, rest)
		if err != nil {
			return err
		}
		a.emitBytes(make([]byte, v)...)
		return nil
	case ".global", ".globl", ".text", ".data", ".section", ".type", ".size", ".proc":
		return nil // accepted and ignored (single flat section)
	case ".equ", ".set":
		parts := splitOperands(rest)
		if len(parts) != 2 || !isIdent(parts[0]) {
			return a.errf(n, "%s wants \"name, value\"", name)
		}
		if a.pass == 1 {
			v, err := a.expr(n, parts[1])
			if err != nil {
				return err
			}
			a.symbols[parts[0]] = v
		}
		return nil
	default:
		return a.errf(n, "unknown directive %s", name)
	}
}

func unquote(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '\\' && i+1 < len(body) {
			i++
			switch body[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '0':
				b.WriteByte(0)
			case '\\', '"':
				b.WriteByte(body[i])
			default:
				return "", fmt.Errorf("unknown escape \\%c", body[i])
			}
			continue
		}
		b.WriteByte(c)
	}
	return b.String(), nil
}

// splitOperands splits on commas that are not inside brackets or
// parentheses.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
