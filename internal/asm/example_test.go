package asm_test

import (
	"fmt"
	"log"

	"liquidarch/internal/asm"
)

// ExampleAssembleAt assembles a two-instruction routine at a load
// address and inspects the symbol table.
func ExampleAssembleAt() {
	obj, err := asm.AssembleAt(`
entry:	mov 7, %o0
	retl
	nop
`, 0x40001000)
	if err != nil {
		log.Fatal(err)
	}
	addr, _ := obj.Symbol("entry")
	fmt.Printf("entry at %#x, %d bytes\n", addr, obj.Size())
	// Output: entry at 0x40001000, 12 bytes
}
