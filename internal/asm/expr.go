package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// expr evaluates an operand expression: numbers (decimal, 0x hex, 0b
// binary, 'c' chars), symbols, %hi()/%lo(), unary minus/complement and
// binary +, -, |, <<. Undefined symbols evaluate to 0 in pass 1 (they
// may be defined later) and are an error in pass 2.
func (a *assembler) expr(n int, s string) (uint32, error) {
	p := &exprParser{a: a, line: n, s: s}
	v, err := p.sum()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return 0, a.errf(n, "trailing junk %q in expression %q", p.s[p.i:], s)
	}
	return v, nil
}

type exprParser struct {
	a    *assembler
	line int
	s    string
	i    int
}

func (p *exprParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *exprParser) peek() byte {
	if p.i < len(p.s) {
		return p.s[p.i]
	}
	return 0
}

// sum = term (('+'|'-'|'|'|'<<'|'>>') term)*
func (p *exprParser) sum() (uint32, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch {
		case p.peek() == '+':
			p.i++
			t, err := p.term()
			if err != nil {
				return 0, err
			}
			v += t
		case p.peek() == '-':
			p.i++
			t, err := p.term()
			if err != nil {
				return 0, err
			}
			v -= t
		case p.peek() == '|':
			p.i++
			t, err := p.term()
			if err != nil {
				return 0, err
			}
			v |= t
		case strings.HasPrefix(p.s[p.i:], "<<"):
			p.i += 2
			t, err := p.term()
			if err != nil {
				return 0, err
			}
			v <<= t & 31
		case strings.HasPrefix(p.s[p.i:], ">>"):
			p.i += 2
			t, err := p.term()
			if err != nil {
				return 0, err
			}
			v >>= t & 31
		default:
			return v, nil
		}
	}
}

func (p *exprParser) term() (uint32, error) {
	p.skipSpace()
	switch {
	case p.peek() == '-':
		p.i++
		v, err := p.term()
		return -v, err
	case p.peek() == '~':
		p.i++
		v, err := p.term()
		return ^v, err
	case p.peek() == '(':
		p.i++
		v, err := p.sum()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, p.a.errf(p.line, "missing ')' in %q", p.s)
		}
		p.i++
		return v, nil
	case p.peek() == '\'':
		if p.i+2 < len(p.s) && p.s[p.i+2] == '\'' {
			v := uint32(p.s[p.i+1])
			p.i += 3
			return v, nil
		}
		return 0, p.a.errf(p.line, "bad character literal in %q", p.s)
	case p.peek() == '%':
		// %hi(expr) / %lo(expr)
		rest := p.s[p.i:]
		var fn string
		switch {
		case strings.HasPrefix(rest, "%hi(") || strings.HasPrefix(rest, "%HI("):
			fn = "hi"
			p.i += 4
		case strings.HasPrefix(rest, "%lo(") || strings.HasPrefix(rest, "%LO("):
			fn = "lo"
			p.i += 4
		default:
			return 0, p.a.errf(p.line, "unknown %% operator in %q", p.s)
		}
		v, err := p.sum()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, p.a.errf(p.line, "missing ')' after %%%s", fn)
		}
		p.i++
		if fn == "hi" {
			return v >> 10, nil
		}
		return v & 0x3FF, nil
	case p.peek() >= '0' && p.peek() <= '9':
		start := p.i
		for p.i < len(p.s) && isNumChar(p.s[p.i]) {
			p.i++
		}
		lit := p.s[start:p.i]
		v, err := strconv.ParseUint(lit, 0, 64)
		if err != nil {
			return 0, p.a.errf(p.line, "bad number %q", lit)
		}
		if v > 0xFFFFFFFF {
			return 0, p.a.errf(p.line, "number %q exceeds 32 bits", lit)
		}
		return uint32(v), nil
	default:
		start := p.i
		for p.i < len(p.s) && isIdentChar(p.s[p.i]) {
			p.i++
		}
		name := p.s[start:p.i]
		if name == "" {
			return 0, p.a.errf(p.line, "expected operand in %q", p.s)
		}
		if name == "." {
			return p.a.loc, nil
		}
		if v, ok := p.a.symbols[name]; ok {
			return v, nil
		}
		if p.a.pass == 1 {
			return 0, nil // may be defined later
		}
		return 0, p.a.errf(p.line, "undefined symbol %q", name)
	}
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' ||
		c >= 'A' && c <= 'F' || c == 'x' || c == 'X' || c == 'b' || c == 'B'
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.'
}

// exprStrict evaluates an expression that must not forward-reference
// (layout directives: .org/.align/.space).
func (a *assembler) exprStrict(n int, s string) (uint32, error) {
	savedPass := a.pass
	a.pass = 2 // force undefined-symbol errors
	v, err := a.expr(n, s)
	a.pass = savedPass
	if err != nil && savedPass == 1 {
		return 0, fmt.Errorf("%w (layout directives cannot forward-reference)", err)
	}
	return v, err
}
