package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"liquidarch/internal/sim"
)

// Proxy is a standalone UDP chaos relay: clients send control packets
// to the proxy's listen address, the proxy forwards them to the target
// server through the Up injector, and relays responses back through
// the Down injector. One proxy serves any number of concurrent
// clients, each over its own upstream socket so the server still sees
// one source address per client.
//
// This is the same layer the liquid-chaos command runs between a real
// liquidctl and a real liquid-server; tests embed it in-process.
type Proxy struct {
	listen *net.UDPConn
	target *net.UDPAddr
	up     *injector
	down   *injector
	clk    sim.Clock

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool
	wg       sync.WaitGroup
}

// session is one client's relay state.
type session struct {
	peer *net.UDPAddr // the client, on the listen socket
	out  *net.UDPConn // our socket toward the target
}

// NewProxy binds listenAddr (e.g. "127.0.0.1:0") and relays to
// targetAddr with the configured faults.
func NewProxy(listenAddr, targetAddr string, cfg Config) (*Proxy, error) {
	if err := cfg.Up.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Down.Validate(); err != nil {
		return nil, err
	}
	la, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen addr: %w", err)
	}
	ta, err := net.ResolveUDPAddr("udp", targetAddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: target addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	px := &Proxy{
		listen:   conn,
		target:   ta,
		up:       newInjector(Up, cfg.Up, cfg.Script, cfg.Seed, cfg.Registry),
		down:     newInjector(Down, cfg.Down, cfg.Script, cfg.Seed, cfg.Registry),
		clk:      sim.Or(cfg.Clock),
		sessions: make(map[string]*session),
	}
	px.up.tracer, px.down.tracer = cfg.Tracer, cfg.Tracer
	return px, nil
}

// Addr returns the bound listen address — point clients here.
func (p *Proxy) Addr() *net.UDPAddr { return p.listen.LocalAddr().(*net.UDPAddr) }

// Serve relays datagrams until Close, returning nil on clean shutdown.
func (p *Proxy) Serve() error {
	buf := make([]byte, 64<<10)
	var err error
	for {
		n, peer, rerr := p.listen.ReadFromUDP(buf)
		if rerr != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if !closed && !errors.Is(rerr, net.ErrClosed) {
				err = fmt.Errorf("chaos: read: %w", rerr)
			}
			break
		}
		s, serr := p.sessionFor(peer)
		if serr != nil {
			continue // cannot relay for this peer; drop like the network would
		}
		outs, later := p.up.apply(buf[:n])
		for _, o := range outs {
			s.out.Write(o) //nolint:errcheck // lossy by design
		}
		p.schedule(later, func(b []byte) { s.out.Write(b) }) //nolint:errcheck
	}
	p.wg.Wait()
	return err
}

// sessionFor returns (or creates) the relay session for a client.
func (p *Proxy) sessionFor(peer *net.UDPAddr) (*session, error) {
	key := peer.String()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("chaos: proxy closed")
	}
	if s, ok := p.sessions[key]; ok {
		return s, nil
	}
	out, err := net.DialUDP("udp", nil, p.target)
	if err != nil {
		return nil, err
	}
	s := &session{peer: peer, out: out}
	p.sessions[key] = s
	p.wg.Add(1)
	go p.downstream(s)
	return s, nil
}

// downstream relays one client's responses back through the Down
// injector.
func (p *Proxy) downstream(s *session) {
	defer p.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, err := s.out.Read(buf)
		if err != nil {
			return
		}
		outs, later := p.down.apply(buf[:n])
		for _, o := range outs {
			p.listen.WriteToUDP(o, s.peer) //nolint:errcheck // lossy by design
		}
		p.schedule(later, func(b []byte) { p.listen.WriteToUDP(b, s.peer) }) //nolint:errcheck
	}
}

// schedule delivers delayed packets via timers.
func (p *Proxy) schedule(later []delayed, write func([]byte)) {
	for _, d := range later {
		d := d
		p.wg.Add(1)
		p.clk.AfterFunc(d.after, func() {
			defer p.wg.Done()
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if !closed {
				write(d.payload)
			}
		})
	}
}

// Flush releases any reorder-held packets immediately (tail of a
// scripted exchange).
func (p *Proxy) Flush() {
	p.mu.Lock()
	sessions := make([]*session, 0, len(p.sessions))
	for _, s := range p.sessions {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()
	if b := p.up.flush(); b != nil && len(sessions) > 0 {
		sessions[0].out.Write(b) //nolint:errcheck
	}
	if b := p.down.flush(); b != nil && len(sessions) > 0 {
		p.listen.WriteToUDP(b, sessions[0].peer) //nolint:errcheck
	}
}

// Close tears the proxy down; Serve returns afterwards.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	sessions := p.sessions
	p.sessions = make(map[string]*session)
	p.mu.Unlock()
	for _, s := range sessions {
		s.out.Close()
	}
	return p.listen.Close()
}
