package chaos

import (
	"net"
	"time"

	"liquidarch/internal/sim"
)

// queued is one inbound packet awaiting delivery to a reader.
type queued struct {
	payload []byte
	addr    net.Addr
}

// Conn wraps any net.PacketConn with the deterministic fault layer:
// writes pass through the Up injector, reads through the Down
// injector. It implements net.PacketConn, so a component built
// against the interface can be run over a faulty transport without
// touching its code.
//
// Delay on the read side is realized as a reorder-hold (the packet is
// released after the next one), since a blocking ReadFrom cannot
// schedule an out-of-band delivery; on the write side delayed packets
// are written by a timer goroutine.
type Conn struct {
	inner net.PacketConn
	up    *injector
	down  *injector
	clk   sim.Clock
	// pending holds read-side packets the injector released beyond
	// the one being returned (duplicates, released reorders).
	pending []queued
}

// WrapPacketConn layers chaos over an existing PacketConn.
func WrapPacketConn(inner net.PacketConn, cfg Config) *Conn {
	downFaults := cfg.Down
	if downFaults.Delay > 0 {
		// Map read-side delay onto reorder: hold now, release after
		// the next packet.
		downFaults.Reorder += downFaults.Delay
		downFaults.Delay = 0
	}
	c := &Conn{
		inner: inner,
		up:    newInjector(Up, cfg.Up, cfg.Script, cfg.Seed, cfg.Registry),
		down:  newInjector(Down, downFaults, cfg.Script, cfg.Seed, cfg.Registry),
		clk:   sim.Or(cfg.Clock),
	}
	c.up.tracer, c.down.tracer = cfg.Tracer, cfg.Tracer
	return c
}

// ReadFrom delivers the next surviving inbound packet.
func (c *Conn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		if len(c.pending) > 0 {
			q := c.pending[0]
			c.pending = c.pending[1:]
			n := copy(p, q.payload)
			return n, q.addr, nil
		}
		buf := make([]byte, 64<<10)
		n, addr, err := c.inner.ReadFrom(buf)
		if err != nil {
			return 0, addr, err
		}
		outs, _ := c.down.apply(buf[:n])
		for _, o := range outs {
			c.pending = append(c.pending, queued{payload: o, addr: addr})
		}
	}
}

// WriteTo sends p through the fault layer. The reported byte count is
// len(p) whenever the packet was accepted by the layer, even if the
// layer then dropped it — exactly what a real lossy network reports.
func (c *Conn) WriteTo(p []byte, addr net.Addr) (int, error) {
	outs, later := c.up.apply(p)
	for _, o := range outs {
		if _, err := c.inner.WriteTo(o, addr); err != nil {
			return 0, err
		}
	}
	for _, d := range later {
		d := d
		c.clk.AfterFunc(d.after, func() {
			c.inner.WriteTo(d.payload, addr) //nolint:errcheck // best effort, like the network
		})
	}
	return len(p), nil
}

// Close closes the underlying conn (any held reordered packet is
// discarded, as a real path teardown would).
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// SetDeadline forwards to the underlying conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the underlying conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the underlying conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
