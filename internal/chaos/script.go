package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Action is a scripted fault.
type Action uint8

// Scripted actions.
const (
	ActDrop Action = iota
	ActDup
	ActReorder
	ActTruncate // Arg = bytes to keep
	ActDelay    // Arg = nanoseconds
)

func (a Action) String() string {
	switch a {
	case ActDrop:
		return "drop"
	case ActDup:
		return "dup"
	case ActReorder:
		return "reorder"
	case ActTruncate:
		return "trunc"
	case ActDelay:
		return "delay"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Rule is one surgical fault: in direction Dir, the Nth packet (1-based;
// 0 = every, From = Nth and onward) carrying control command Cmd
// (netproto.CommandName label, e.g. "load", "start", "result") suffers
// Action. Rules let a test say "drop the 3rd load chunk" or "dup every
// start ack" exactly, with no randomness at all.
type Rule struct {
	Dir    Direction
	Cmd    string
	Nth    int
	From   bool // apply from the Nth occurrence onward
	Action Action
	Arg    int64 // truncate: bytes kept; delay: nanoseconds

	seen int // occurrence counter, advanced by the injector
}

// ParseScript parses the liquid-chaos mini-DSL: comma-separated rules
// of the form
//
//	dir:cmd[@n[+]]=action[:arg]
//
// where dir is up|down, cmd is a control command label ("status",
// "load", "start", "readmem", "writemem", "reconfigure", "getconfig",
// "trace", "stats", "result", "startsync", "wait", "error"), @n
// selects the
// nth matching packet (append + for "nth onward"; omit for every),
// and action is drop | dup | reorder | trunc:BYTES | delay:DURATION.
//
// Examples:
//
//	up:load@3=drop          drop the 3rd load chunk the client sends
//	down:start=dup          duplicate every start ack
//	up:load@4+=drop         black-hole the load from chunk 4 onward
//	down:result@1=delay:50ms  delay the first result response
func ParseScript(s string) ([]*Rule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var rules []*Rule
	for _, part := range strings.Split(s, ",") {
		r, err := parseRule(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRule(s string) (*Rule, error) {
	lhs, rhs, ok := strings.Cut(s, "=")
	if !ok {
		return nil, fmt.Errorf("chaos: rule %q: missing '='", s)
	}
	dirStr, cmdStr, ok := strings.Cut(lhs, ":")
	if !ok {
		return nil, fmt.Errorf("chaos: rule %q: missing direction", s)
	}
	r := &Rule{}
	switch dirStr {
	case "up":
		r.Dir = Up
	case "down":
		r.Dir = Down
	default:
		return nil, fmt.Errorf("chaos: rule %q: direction %q (want up|down)", s, dirStr)
	}
	if cmd, nth, ok := strings.Cut(cmdStr, "@"); ok {
		cmdStr = cmd
		if strings.HasSuffix(nth, "+") {
			r.From = true
			nth = strings.TrimSuffix(nth, "+")
		}
		n, err := strconv.Atoi(nth)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("chaos: rule %q: bad occurrence %q", s, nth)
		}
		r.Nth = n
	}
	if cmdStr == "" {
		return nil, fmt.Errorf("chaos: rule %q: empty command", s)
	}
	r.Cmd = cmdStr

	act, arg, _ := strings.Cut(rhs, ":")
	switch act {
	case "drop":
		r.Action = ActDrop
	case "dup":
		r.Action = ActDup
	case "reorder":
		r.Action = ActReorder
	case "trunc":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("chaos: rule %q: trunc wants a byte count", s)
		}
		r.Action, r.Arg = ActTruncate, int64(n)
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("chaos: rule %q: delay wants a duration: %v", s, err)
		}
		r.Action, r.Arg = ActDelay, int64(d)
	default:
		return nil, fmt.Errorf("chaos: rule %q: action %q (want drop|dup|reorder|trunc:N|delay:D)", s, act)
	}
	return r, nil
}
