package chaos

import (
	"bytes"
	"net"
	"testing"
	"time"

	"liquidarch/internal/netproto"
)

// udpPair returns two loopback UDP sockets that can talk to each
// other, closed at test end.
func udpPair(t *testing.T) (a, b net.PacketConn) {
	t.Helper()
	var err error
	a, err = net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err = net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestConnPassThrough(t *testing.T) {
	inner, peer := udpPair(t)
	c := WrapPacketConn(inner, Config{Seed: 1})
	msg := pkt(netproto.CmdStatus, 0xAB)
	if n, err := c.WriteTo(msg, peer.LocalAddr()); err != nil || n != len(msg) {
		t.Fatalf("WriteTo = %d, %v", n, err)
	}
	buf := make([]byte, 1024)
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := peer.ReadFrom(buf)
	if err != nil || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("peer read %x, %v", buf[:n], err)
	}
}

func TestConnUpDup(t *testing.T) {
	inner, peer := udpPair(t)
	c := WrapPacketConn(inner, Config{Seed: 1, Up: Faults{Dup: 1}})
	msg := pkt(netproto.CmdStartLEON)
	if _, err := c.WriteTo(msg, peer.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	for i := 0; i < 2; i++ {
		peer.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := peer.ReadFrom(buf)
		if err != nil || !bytes.Equal(buf[:n], msg) {
			t.Fatalf("copy %d: read %x, %v", i, buf[:n], err)
		}
	}
}

func TestConnUpDropReportsFullWrite(t *testing.T) {
	inner, peer := udpPair(t)
	c := WrapPacketConn(inner, Config{Seed: 1, Up: Faults{Drop: 1}})
	msg := pkt(netproto.CmdStatus)
	n, err := c.WriteTo(msg, peer.LocalAddr())
	if err != nil || n != len(msg) {
		t.Fatalf("dropped write reported (%d, %v), want (%d, nil)", n, err, len(msg))
	}
	peer.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1024)
	if n, _, err := peer.ReadFrom(buf); err == nil {
		t.Fatalf("dropped packet arrived anyway: %x", buf[:n])
	}
}

func TestConnDownScriptedDrop(t *testing.T) {
	inner, peer := udpPair(t)
	rules, err := ParseScript("down:status@1=drop")
	if err != nil {
		t.Fatal(err)
	}
	c := WrapPacketConn(inner, Config{Seed: 1, Script: rules})
	first := pkt(netproto.CmdStatus, 1)
	second := pkt(netproto.CmdStatus, 2)
	if _, err := peer.WriteTo(first, inner.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.WriteTo(second, inner.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1024)
	n, _, err := c.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], second) {
		t.Fatalf("read %x, want the second packet (first scripted away)", buf[:n])
	}
}

func TestConnReadDelayBecomesReorder(t *testing.T) {
	inner, peer := udpPair(t)
	c := WrapPacketConn(inner, Config{Seed: 1, Down: Faults{
		Delay: 1, DelayMin: time.Millisecond, DelayMax: 2 * time.Millisecond}})
	p1, p2 := pkt(netproto.CmdStatus, 1), pkt(netproto.CmdStatus, 2)
	if _, err := peer.WriteTo(p1, inner.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// Make sure p1 is queued in the kernel before p2 so arrival order
	// is deterministic on loopback.
	time.Sleep(20 * time.Millisecond)
	if _, err := peer.WriteTo(p2, inner.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1024)
	n, _, err := c.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], p2) {
		t.Fatalf("first read %x, want p2 (p1 held by mapped delay)", buf[:n])
	}
	n, _, err = c.ReadFrom(buf)
	if err != nil || !bytes.Equal(buf[:n], p1) {
		t.Fatalf("second read %x, %v, want held p1", buf[:n], err)
	}
}

func TestConnImplementsPacketConn(t *testing.T) {
	inner, _ := udpPair(t)
	var c net.PacketConn = WrapPacketConn(inner, Config{Seed: 1})
	if c.LocalAddr().String() != inner.LocalAddr().String() {
		t.Fatalf("LocalAddr %v != inner %v", c.LocalAddr(), inner.LocalAddr())
	}
	if err := c.SetDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWriteDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
