package chaos

import (
	"bytes"
	"net"
	"testing"
	"time"

	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
)

// echoServer runs a UDP server that echoes every datagram back with a
// one-byte 0xEE prefix (so a test can tell request from response).
func echoServer(t *testing.T) *net.UDPAddr {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			resp := append([]byte{0xEE}, buf[:n]...)
			conn.WriteToUDP(resp, peer) //nolint:errcheck
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr)
}

// startProxy builds and serves a proxy, wired for cleanup.
func startProxy(t *testing.T, target string, cfg Config) *Proxy {
	t.Helper()
	p, err := NewProxy("127.0.0.1:0", target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Serve() }()
	t.Cleanup(func() {
		p.Close()
		if err := <-done; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})
	return p
}

func TestProxyRelaysBothWays(t *testing.T) {
	target := echoServer(t)
	p := startProxy(t, target.String(), Config{Seed: 1})
	client, err := net.DialUDP("udp", nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	msg := pkt(netproto.CmdStatus, 0x42)
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], append([]byte{0xEE}, msg...)) {
		t.Fatalf("echo through proxy = %x", buf[:n])
	}
}

func TestProxyScriptedUpDrop(t *testing.T) {
	target := echoServer(t)
	rules, err := ParseScript("up:status@1=drop")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	p := startProxy(t, target.String(), Config{Seed: 1, Script: rules, Registry: reg})
	client, err := net.DialUDP("udp", nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// First request is scripted away: no echo.
	msg := pkt(netproto.CmdStatus)
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	client.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, err := client.Read(buf); err == nil {
		t.Fatalf("scripted-away request was echoed: %x", buf[:n])
	}
	// The retransmission (second occurrence) passes.
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err != nil {
		t.Fatalf("retransmission lost too: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(`liquid_chaos_injected_total{event="up_drop"}`); got != 1 {
		t.Fatalf("up_drop counter = %d, want 1", got)
	}
}

func TestProxyDelayedDelivery(t *testing.T) {
	target := echoServer(t)
	rules, err := ParseScript("up:status=delay:30ms")
	if err != nil {
		t.Fatal(err)
	}
	p := startProxy(t, target.String(), Config{Seed: 1, Script: rules})
	client, err := net.DialUDP("udp", nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	if _, err := client.Write(pkt(netproto.CmdStatus)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delayed packet arrived after only %v", elapsed)
	}
}

func TestProxyConcurrentClients(t *testing.T) {
	target := echoServer(t)
	p := startProxy(t, target.String(), Config{Seed: 1})
	for i := 0; i < 3; i++ {
		client, err := net.DialUDP("udp", nil, p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		msg := pkt(netproto.CmdStatus, byte(i))
		if _, err := client.Write(msg); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1024)
		client.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := client.Read(buf)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], append([]byte{0xEE}, msg...)) {
			t.Fatalf("client %d got %x", i, buf[:n])
		}
		client.Close()
	}
}

func TestProxyFlushReleasesHeld(t *testing.T) {
	target := echoServer(t)
	rules, err := ParseScript("up:status@1=reorder")
	if err != nil {
		t.Fatal(err)
	}
	p := startProxy(t, target.String(), Config{Seed: 1, Script: rules})
	client, err := net.DialUDP("udp", nil, p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Write(pkt(netproto.CmdStatus)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	client.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := client.Read(buf); err == nil {
		t.Fatalf("held packet was relayed before flush")
	}
	// Give the proxy loop time to register the session, then flush.
	p.Flush()
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err != nil {
		t.Fatalf("flush did not release the held packet: %v", err)
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	target := echoServer(t)
	p, err := NewProxy("127.0.0.1:0", target.String(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Serve() }()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve after close: %v", err)
	}
}

func TestProxyRejectsBadFaults(t *testing.T) {
	if _, err := NewProxy("127.0.0.1:0", "127.0.0.1:1", Config{Up: Faults{Drop: 2}}); err == nil {
		t.Fatalf("NewProxy accepted drop=2")
	}
	if _, err := NewProxy("127.0.0.1:0", "127.0.0.1:1", Config{Down: Faults{Dup: -1}}); err == nil {
		t.Fatalf("NewProxy accepted dup=-1")
	}
}
