// Package chaos is the platform's deterministic fault-injection net
// layer. The paper's control plane drives LEON boards over the open
// Internet via UDP (§2.6) — a transport that drops, duplicates,
// reorders, delays and truncates — and chaos reproduces exactly those
// faults on demand, from a pinned seed, so every transport-hardening
// claim in the client and server can be tested instead of trusted.
//
// Three entry points share one fault engine:
//
//   - Conn wraps any net.PacketConn in-process (unit tests);
//   - Proxy is a standalone UDP relay that sits between a real client
//     and a real server (integration tests, and the liquid-chaos
//     command for soaking a deployment);
//   - Script expresses surgical, non-random faults ("drop the 3rd
//     load chunk", "dup every start ack") that compose with the
//     random rates.
//
// Determinism: all random decisions come from one seeded
// math/rand.Rand per direction, drawn in packet-arrival order. With a
// fixed seed and a serial packet stream the injected fault sequence is
// bit-identical across runs; with concurrent clients the draw order
// follows arrival order, so the aggregate rates still hold and every
// injected fault is still counted in the metrics registry.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
	"liquidarch/internal/sim"
	"liquidarch/internal/tracing"
)

// Direction labels the two halves of a control-plane path.
type Direction uint8

// Directions: Up is client→server (requests), Down is server→client
// (responses).
const (
	Up Direction = iota
	Down
)

func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Faults are the per-direction random fault rates, all probabilities
// in [0,1] evaluated independently per packet (drop first: a dropped
// packet cannot also be duplicated).
type Faults struct {
	// Drop discards the packet.
	Drop float64
	// Dup delivers the packet twice, back to back.
	Dup float64
	// Reorder holds the packet and releases it after the next packet
	// in the same direction passes — a one-packet swap.
	Reorder float64
	// Truncate cuts the packet to a random prefix (possibly shorter
	// than the control header), exercising every parser's
	// truncation path.
	Truncate float64
	// Delay holds the packet for a duration uniform in
	// [DelayMin, DelayMax] before delivering it out of band.
	Delay    float64
	DelayMin time.Duration
	DelayMax time.Duration
}

// Config assembles a chaos layer: a seed, per-direction random rates,
// an optional script of surgical rules, and an optional metrics
// registry receiving the injection counters.
type Config struct {
	Seed     int64
	Up, Down Faults
	Script   []*Rule
	Registry *metrics.Registry // nil → uncounted (nil-safe instruments)
	// Tracer, when set, annotates every injected fault into the
	// exchange trace named by the packet it hit: packets carrying a v4
	// trace id get a zero-length "fault:<event>" span (dir and cmd
	// attrs) in that trace, so a merged timeline shows exactly which
	// datagram the chaos layer dropped, duplicated, delayed, reordered
	// or truncated. Packets without a trace id are unannotated.
	Tracer *tracing.Collector
	// Clock schedules delayed-fault delivery (nil = real time); a
	// simulated fabric passes its virtual clock so injected delays
	// ride the virtual timeline.
	Clock sim.Clock
}

// delayed is a packet scheduled for out-of-band delivery.
type delayed struct {
	payload []byte
	after   time.Duration
}

// injector applies one direction's faults to a packet stream. All
// state (rng, script counters, the reorder hold slot) is behind one
// mutex, so decisions are drawn in arrival order.
type injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	f      Faults
	script []*Rule
	dir    Direction
	held   []byte // reorder hold slot (nil = empty)
	tracer *tracing.Collector

	packets  *metrics.Counter
	injected *metrics.CounterVec
}

// newInjector builds one direction's engine. Script rules are shared
// pointers: both directions see the same rule list, each rule matches
// only its own direction.
func newInjector(dir Direction, f Faults, script []*Rule, seed int64, reg *metrics.Registry) *injector {
	// Offset the two directions' seeds so up and down do not mirror
	// each other's decisions.
	seed = seed*2 + int64(dir)
	inj := &injector{
		rng:    rand.New(rand.NewSource(seed)),
		f:      f,
		script: script,
		dir:    dir,
	}
	inj.packets = reg.CounterVec("liquid_chaos_packets_total", "Packets entering the chaos layer, by direction.", "dir").With(dir.String())
	inj.injected = reg.CounterVec("liquid_chaos_injected_total", "Faults injected by the chaos layer, by dir_event.", "event")
	return inj
}

// count records one injected fault and, when the victim packet names a
// trace, annotates the fault into that trace. p is the payload as it
// looked when the decision was drawn (best effort: a packet already
// cut below the v4 header annotates nothing).
func (inj *injector) count(event string, p []byte) {
	inj.injected.With(inj.dir.String() + "_" + event).Inc()
	if inj.tracer == nil {
		return
	}
	pkt, err := netproto.ParsePacket(p)
	if err != nil || !pkt.HasTrace || pkt.TraceID == 0 {
		return
	}
	inj.tracer.Trace(pkt.TraceID).Event("fault:"+event,
		tracing.A("dir", inj.dir.String()),
		tracing.A("cmd", netproto.CommandName(pkt.Command)))
}

// apply runs the fault decision for one packet and returns the
// payloads to deliver immediately (in order) plus any delayed
// deliveries. The input is copied: callers may reuse their buffer.
// Zero immediate payloads means the packet was dropped or held.
func (inj *injector) apply(payload []byte) (now [][]byte, later []delayed) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.packets.Inc()
	p := append([]byte(nil), payload...)

	// Scripted rules fire first and override the random rates.
	if rule := matchRule(inj.script, inj.dir, p); rule != nil {
		now, later = inj.applyAction(rule.Action, rule.Arg, p)
	} else {
		now, later = inj.applyRandom(p)
	}

	// A previously held (reordered) packet rides out right after the
	// first packet that passes.
	if len(now) > 0 && inj.held != nil {
		now = append(now, inj.held)
		inj.held = nil
	}
	return now, later
}

// applyRandom draws the independent per-packet fault decisions.
func (inj *injector) applyRandom(p []byte) ([][]byte, []delayed) {
	f := inj.f
	if f.Drop > 0 && inj.rng.Float64() < f.Drop {
		inj.count("drop", p)
		return nil, nil
	}
	if f.Truncate > 0 && inj.rng.Float64() < f.Truncate && len(p) > 0 {
		n := inj.rng.Intn(len(p))
		inj.count("truncate", p)
		p = p[:n]
	}
	if f.Reorder > 0 && inj.rng.Float64() < f.Reorder && inj.held == nil {
		inj.count("reorder", p)
		inj.held = p
		return nil, nil
	}
	if f.Delay > 0 && inj.rng.Float64() < f.Delay {
		inj.count("delay", p)
		return nil, []delayed{{payload: p, after: inj.delayDur()}}
	}
	if f.Dup > 0 && inj.rng.Float64() < f.Dup {
		inj.count("dup", p)
		return [][]byte{p, p}, nil
	}
	return [][]byte{p}, nil
}

// applyAction executes one scripted action on a packet.
func (inj *injector) applyAction(a Action, arg int64, p []byte) ([][]byte, []delayed) {
	switch a {
	case ActDrop:
		inj.count("drop", p)
		return nil, nil
	case ActDup:
		inj.count("dup", p)
		return [][]byte{p, p}, nil
	case ActReorder:
		if inj.held == nil {
			inj.count("reorder", p)
			inj.held = p
			return nil, nil
		}
		return [][]byte{p}, nil
	case ActTruncate:
		n := int(arg)
		if n > len(p) {
			n = len(p)
		}
		inj.count("truncate", p)
		return [][]byte{p[:n]}, nil
	case ActDelay:
		inj.count("delay", p)
		return nil, []delayed{{payload: p, after: time.Duration(arg)}}
	default:
		return [][]byte{p}, nil
	}
}

// delayDur draws a delay uniform in [DelayMin, DelayMax].
func (inj *injector) delayDur() time.Duration {
	lo, hi := inj.f.DelayMin, inj.f.DelayMax
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(inj.rng.Int63n(int64(hi-lo)))
}

// flush releases a held (reordered) packet, if any — called when the
// stream is closing so a swap at the tail is not silently lost.
func (inj *injector) flush() []byte {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	p := inj.held
	inj.held = nil
	return p
}

// matchRule finds the first rule matching this packet, advancing the
// occurrence counters of every rule whose direction and command match.
func matchRule(rules []*Rule, dir Direction, payload []byte) *Rule {
	if len(rules) == 0 {
		return nil
	}
	cmd, ok := payloadCommand(payload)
	if !ok {
		return nil
	}
	for _, r := range rules {
		if r.Dir != dir || r.Cmd != cmd {
			continue
		}
		r.seen++
		switch {
		case r.Nth == 0: // every occurrence
			return r
		case r.From && r.seen >= r.Nth: // nth onward
			return r
		case r.seen == r.Nth: // exactly the nth
			return r
		}
	}
	return nil
}

// payloadCommand extracts the control command label from a packet
// payload ("load", "start", ...; see netproto.CommandName). Non-Liquid
// payloads match no rule.
func payloadCommand(payload []byte) (string, bool) {
	pkt, err := netproto.ParsePacket(payload)
	if err != nil {
		return "", false
	}
	return netproto.CommandName(pkt.Command), true
}

// Validate rejects out-of-range fault rates early.
func (f Faults) Validate() error {
	for _, v := range []struct {
		name string
		p    float64
	}{{"drop", f.Drop}, {"dup", f.Dup}, {"reorder", f.Reorder}, {"truncate", f.Truncate}, {"delay", f.Delay}} {
		if v.p < 0 || v.p > 1 {
			return fmt.Errorf("chaos: %s rate %v outside [0,1]", v.name, v.p)
		}
	}
	if f.DelayMin < 0 || f.DelayMax < 0 {
		return fmt.Errorf("chaos: negative delay bounds")
	}
	return nil
}
