package chaos

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
)

// pkt builds a marshalled control packet carrying cmd, so scripted
// rules (which match on the command label) can see it.
func pkt(cmd uint8, body ...byte) []byte {
	return netproto.Packet{Command: cmd, Body: body}.Marshal()
}

// applySeq runs n packets through a fresh injector and returns a
// compact transcript of what came out — the determinism fingerprint.
func applySeq(t *testing.T, seed int64, f Faults, n int) string {
	t.Helper()
	inj := newInjector(Up, f, nil, seed, nil)
	var out bytes.Buffer
	for i := 0; i < n; i++ {
		now, later := inj.apply(pkt(netproto.CmdStatus, byte(i), byte(i>>8)))
		fmt.Fprintf(&out, "%d:", i)
		for _, p := range now {
			fmt.Fprintf(&out, " %x", p)
		}
		for _, d := range later {
			fmt.Fprintf(&out, " delay(%v)=%x", d.after, d.payload)
		}
		out.WriteByte('\n')
	}
	if tail := inj.flush(); tail != nil {
		fmt.Fprintf(&out, "flush %x\n", tail)
	}
	return out.String()
}

func TestInjectorDeterministic(t *testing.T) {
	f := Faults{Drop: 0.2, Dup: 0.1, Reorder: 0.15, Truncate: 0.1,
		Delay: 0.1, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond}
	a := applySeq(t, 42, f, 500)
	b := applySeq(t, 42, f, 500)
	if a != b {
		t.Fatalf("same seed produced different fault sequences")
	}
	c := applySeq(t, 43, f, 500)
	if a == c {
		t.Fatalf("different seeds produced identical fault sequences")
	}
}

func TestDirectionsDoNotMirror(t *testing.T) {
	f := Faults{Drop: 0.5}
	up := newInjector(Up, f, nil, 7, nil)
	down := newInjector(Down, f, nil, 7, nil)
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		p := pkt(netproto.CmdStatus)
		un, _ := up.apply(p)
		dn, _ := down.apply(p)
		if (len(un) == 0) == (len(dn) == 0) {
			same++
		}
	}
	if same == n {
		t.Fatalf("up and down injectors mirrored all %d decisions", n)
	}
}

func TestDropRateApproximate(t *testing.T) {
	inj := newInjector(Up, Faults{Drop: 0.2}, nil, 1, nil)
	dropped := 0
	const n = 10000
	for i := 0; i < n; i++ {
		now, _ := inj.apply(pkt(netproto.CmdStatus))
		if len(now) == 0 {
			dropped++
		}
	}
	if dropped < n/10 || dropped > 3*n/10 {
		t.Fatalf("drop rate 0.2 dropped %d/%d packets", dropped, n)
	}
}

func TestReorderSwapsAdjacent(t *testing.T) {
	// Reorder=1 holds the first packet; the second cannot be held
	// (slot busy) and releases the first right behind itself.
	inj := newInjector(Up, Faults{Reorder: 1}, nil, 1, nil)
	p1, p2 := pkt(netproto.CmdStatus, 1), pkt(netproto.CmdStatus, 2)
	now, _ := inj.apply(p1)
	if len(now) != 0 {
		t.Fatalf("first packet should be held, got %d payloads", len(now))
	}
	now, _ = inj.apply(p2)
	if len(now) != 2 || !bytes.Equal(now[0], p2) || !bytes.Equal(now[1], p1) {
		t.Fatalf("expected swapped order [p2 p1], got %x", now)
	}
}

func TestDupDelivesTwice(t *testing.T) {
	inj := newInjector(Up, Faults{Dup: 1}, nil, 1, nil)
	p := pkt(netproto.CmdStatus, 9)
	now, _ := inj.apply(p)
	if len(now) != 2 || !bytes.Equal(now[0], p) || !bytes.Equal(now[1], p) {
		t.Fatalf("dup=1 should deliver twice, got %x", now)
	}
}

func TestApplyCopiesInput(t *testing.T) {
	inj := newInjector(Up, Faults{}, nil, 1, nil)
	buf := pkt(netproto.CmdStatus, 7)
	now, _ := inj.apply(buf)
	want := append([]byte(nil), buf...)
	for i := range buf {
		buf[i] = 0xEE // caller reuses its buffer
	}
	if len(now) != 1 || !bytes.Equal(now[0], want) {
		t.Fatalf("injector aliased the caller's buffer")
	}
}

func TestFlushReleasesHeld(t *testing.T) {
	inj := newInjector(Up, Faults{Reorder: 1}, nil, 1, nil)
	p := pkt(netproto.CmdStatus, 3)
	inj.apply(p)
	if got := inj.flush(); !bytes.Equal(got, p) {
		t.Fatalf("flush returned %x, want held packet", got)
	}
	if got := inj.flush(); got != nil {
		t.Fatalf("second flush returned %x, want nil", got)
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	if err := (Faults{Drop: 1.5}).Validate(); err == nil {
		t.Fatalf("drop=1.5 validated")
	}
	if err := (Faults{Delay: 0.5, DelayMin: -time.Second}).Validate(); err == nil {
		t.Fatalf("negative delay bound validated")
	}
	if err := (Faults{Drop: 0.2, Dup: 1}).Validate(); err != nil {
		t.Fatalf("valid faults rejected: %v", err)
	}
}

func TestScriptedRuleOverridesRandom(t *testing.T) {
	// Random rates say drop everything; the scripted dup rule wins for
	// its command.
	rules, err := ParseScript("up:start=dup")
	if err != nil {
		t.Fatal(err)
	}
	inj := newInjector(Up, Faults{Drop: 1}, rules, 1, nil)
	now, _ := inj.apply(pkt(netproto.CmdStartLEON))
	if len(now) != 2 {
		t.Fatalf("scripted dup should override random drop, got %d payloads", len(now))
	}
	now, _ = inj.apply(pkt(netproto.CmdStatus))
	if len(now) != 0 {
		t.Fatalf("unscripted command should still hit the random drop")
	}
}

func TestScriptNthSemantics(t *testing.T) {
	rules, err := ParseScript("up:load@3=drop")
	if err != nil {
		t.Fatal(err)
	}
	inj := newInjector(Up, Faults{}, rules, 1, nil)
	var survived []int
	for i := 1; i <= 5; i++ {
		now, _ := inj.apply(pkt(netproto.CmdLoadProgram))
		if len(now) > 0 {
			survived = append(survived, i)
		}
	}
	want := []int{1, 2, 4, 5}
	if fmt.Sprint(survived) != fmt.Sprint(want) {
		t.Fatalf("@3 drop: survived %v, want %v", survived, want)
	}
}

func TestScriptFromSemantics(t *testing.T) {
	rules, err := ParseScript("up:load@3+=drop")
	if err != nil {
		t.Fatal(err)
	}
	inj := newInjector(Up, Faults{}, rules, 1, nil)
	var survived []int
	for i := 1; i <= 6; i++ {
		now, _ := inj.apply(pkt(netproto.CmdLoadProgram))
		if len(now) > 0 {
			survived = append(survived, i)
		}
	}
	if fmt.Sprint(survived) != fmt.Sprint([]int{1, 2}) {
		t.Fatalf("@3+ drop: survived %v, want [1 2]", survived)
	}
}

func TestScriptDirectionIsolated(t *testing.T) {
	rules, err := ParseScript("down:result@1=drop")
	if err != nil {
		t.Fatal(err)
	}
	up := newInjector(Up, Faults{}, rules, 1, nil)
	if now, _ := up.apply(pkt(netproto.CmdResult)); len(now) != 1 {
		t.Fatalf("down rule fired in the up direction")
	}
	down := newInjector(Down, Faults{}, rules, 1, nil)
	if now, _ := down.apply(pkt(netproto.CmdResult | netproto.RespFlag)); len(now) != 0 {
		t.Fatalf("down rule missed the first result response")
	}
}

func TestScriptTruncAndDelay(t *testing.T) {
	rules, err := ParseScript("up:writemem=trunc:3, up:readmem=delay:40ms")
	if err != nil {
		t.Fatal(err)
	}
	inj := newInjector(Up, Faults{}, rules, 1, nil)
	now, _ := inj.apply(pkt(netproto.CmdWriteMemory, 1, 2, 3, 4))
	if len(now) != 1 || len(now[0]) != 3 {
		t.Fatalf("trunc:3 kept %d bytes", len(now[0]))
	}
	now, later := inj.apply(pkt(netproto.CmdReadMemory))
	if len(now) != 0 || len(later) != 1 || later[0].after != 40*time.Millisecond {
		t.Fatalf("delay:40ms gave now=%d later=%v", len(now), later)
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, bad := range []string{
		"load=drop",          // missing direction
		"sideways:load=drop", // bad direction
		"up:=drop",           // empty command
		"up:load",            // missing '='
		"up:load=explode",    // unknown action
		"up:load@0=drop",     // occurrence < 1
		"up:load@x=drop",     // non-numeric occurrence
		"up:load=trunc:-1",   // negative byte count
		"up:load=trunc:zz",   // non-numeric byte count
		"up:load=delay:soon", // bad duration
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted", bad)
		}
	}
	if rules, err := ParseScript("  "); err != nil || rules != nil {
		t.Errorf("blank script: rules=%v err=%v", rules, err)
	}
	rules, err := ParseScript("up:load@3=drop, down:start=dup")
	if err != nil || len(rules) != 2 {
		t.Fatalf("two-rule script: rules=%v err=%v", rules, err)
	}
	if rules[0].Action.String() != "drop" || rules[1].Action.String() != "dup" {
		t.Fatalf("actions %v/%v", rules[0].Action, rules[1].Action)
	}
}

func TestNonLiquidPayloadBypassesScript(t *testing.T) {
	rules, _ := ParseScript("up:status=drop")
	inj := newInjector(Up, Faults{}, rules, 1, nil)
	raw := []byte("not a control packet")
	now, _ := inj.apply(raw)
	if len(now) != 1 || !bytes.Equal(now[0], raw) {
		t.Fatalf("non-Liquid payload should pass untouched")
	}
}

func TestInjectionMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	rules, _ := ParseScript("up:start=dup")
	inj := newInjector(Up, Faults{Drop: 1}, rules, 1, reg)
	inj.apply(pkt(netproto.CmdStatus))    // random drop
	inj.apply(pkt(netproto.CmdStartLEON)) // scripted dup
	snap := reg.Snapshot()
	if got := snap.Counter(`liquid_chaos_packets_total{dir="up"}`); got != 2 {
		t.Fatalf("packets counter = %d, want 2", got)
	}
	if got := snap.Counter(`liquid_chaos_injected_total{event="up_drop"}`); got != 1 {
		t.Fatalf("drop counter = %d, want 1", got)
	}
	if got := snap.Counter(`liquid_chaos_injected_total{event="up_dup"}`); got != 1 {
		t.Fatalf("dup counter = %d, want 1", got)
	}
}

func TestDelayDurationBounds(t *testing.T) {
	f := Faults{Delay: 1, DelayMin: 2 * time.Millisecond, DelayMax: 8 * time.Millisecond}
	inj := newInjector(Up, f, nil, 1, nil)
	for i := 0; i < 200; i++ {
		_, later := inj.apply(pkt(netproto.CmdStatus))
		if len(later) != 1 {
			t.Fatalf("delay=1 did not delay packet %d", i)
		}
		if d := later[0].after; d < 2*time.Millisecond || d >= 8*time.Millisecond {
			t.Fatalf("delay %v outside [2ms,8ms)", d)
		}
	}
}
