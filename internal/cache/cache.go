// Package cache models the LEON instruction and data caches whose
// geometry the Liquid Architecture makes reconfigurable: "Variable
// instruction/data cache size" is one of the extension axes named in
// §1, and the paper's evaluation (Figures 7-9) sweeps the data cache
// from 1 KB to 16 KB at a constant 32-byte line.
//
// The model is a physically-indexed set-associative cache with
// configurable size, line size, associativity, replacement policy and
// write policy. LEON2's base configuration is direct-mapped,
// write-through, no-write-allocate; the alternatives exist for the
// design-space exploration the liquid environment performs.
package cache

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"liquidarch/internal/amba"
)

// Replacement selects the victim policy for associative configurations.
type Replacement uint8

// Replacement policies.
const (
	LRU Replacement = iota
	RoundRobin
	Random // xorshift PRNG, deterministic across runs
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case RoundRobin:
		return "rr"
	case Random:
		return "rnd"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// WritePolicy selects how stores interact with the cache.
type WritePolicy uint8

// Write policies.
const (
	// WriteThrough writes to memory on every store and updates the
	// cache only on hit (no write allocate) — the LEON2 scheme.
	WriteThrough WritePolicy = iota
	// WriteBack marks lines dirty and writes them back on eviction
	// (write allocate). A liquid-architecture extension point.
	WriteBack
)

func (w WritePolicy) String() string {
	if w == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// Config is one point in the cache design space.
type Config struct {
	// SizeBytes is the total capacity; must be a power of two.
	SizeBytes int
	// LineBytes is the refill unit; must be a power of two ≥ 4.
	LineBytes int
	// Assoc is the number of ways; must divide SizeBytes/LineBytes.
	Assoc int
	// Replacement applies when Assoc > 1.
	Replacement Replacement
	// Write selects the store policy (data caches only).
	Write WritePolicy
}

// Validate reports whether the configuration is realizable.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache: size %d is not a positive power of two", c.SizeBytes)
	case c.LineBytes < 4 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d is not a power of two ≥ 4", c.LineBytes)
	case c.LineBytes > c.SizeBytes:
		return fmt.Errorf("cache: line size %d exceeds capacity %d", c.LineBytes, c.SizeBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: associativity %d is not positive", c.Assoc)
	case (c.SizeBytes/c.LineBytes)%c.Assoc != 0:
		return fmt.Errorf("cache: %d lines do not divide into %d ways", c.SizeBytes/c.LineBytes, c.Assoc)
	}
	return nil
}

// Lines returns the total number of lines.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

func (c Config) String() string {
	return fmt.Sprintf("%dB/%dB-line/%d-way/%s/%s",
		c.SizeBytes, c.LineBytes, c.Assoc, c.Replacement, c.Write)
}

// Stats accumulates cache behaviour counters.
type Stats struct {
	Hits       uint64
	Misses     uint64
	WriteHits  uint64
	WriteMiss  uint64
	Fills      uint64 // line fills from memory
	WriteBacks uint64 // dirty evictions (write-back only)
	Flushes    uint64
}

// MissRatio returns misses/(hits+misses) over read accesses, or 0 when
// there were none.
func (s Stats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	data  []byte
	age   uint64 // LRU timestamp
}

// Cache is one cache instance in front of the AHB.
type Cache struct {
	cfg  Config
	bus  *amba.AHB
	base uint32 // AHB base address of the cached region's origin (0: identity)

	// Precomputed index geometry: Config.Sets() divides twice per
	// call, far too slow for something recomputed on every access of
	// the simulation hot loop.
	lineShift uint32 // log2(LineBytes)
	setShift  uint32 // lineShift + log2(Sets)
	setMask   uint32 // Sets-1
	offMask   uint32 // LineBytes-1

	// all is the contiguous backing array for every line; sets holds
	// per-set windows into it. The instruction-fetch fast path indexes
	// all directly (set*assoc+way) to skip one pointer chase.
	all     []line
	assoc   uint32
	direct  bool // Assoc == 1: no replacement state to maintain
	sets    [][]line
	tick    uint64
	rrNext  []int  // per-set round-robin pointer
	rnd     uint32 // xorshift state
	enabled bool

	stats Stats
}

// New builds a cache with the given geometry in front of bus. Accesses
// use full AHB addresses; the cache is physically indexed and tagged.
func New(cfg Config, bus *amba.AHB) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, bus: bus, rnd: 0x2545F491, enabled: true}
	c.lineShift = uint32(bits.TrailingZeros32(uint32(cfg.LineBytes)))
	c.setShift = c.lineShift + uint32(bits.TrailingZeros32(uint32(cfg.Sets())))
	c.setMask = uint32(cfg.Sets() - 1)
	c.offMask = uint32(cfg.LineBytes - 1)
	c.assoc = uint32(cfg.Assoc)
	c.direct = cfg.Assoc == 1
	c.all = make([]line, cfg.Lines())
	c.sets = make([][]line, cfg.Sets())
	c.rrNext = make([]int, cfg.Sets())
	backing := make([]byte, cfg.SizeBytes)
	for i := range c.all {
		c.all[i].data = backing[:cfg.LineBytes:cfg.LineBytes]
		backing = backing[cfg.LineBytes:]
	}
	for i := range c.sets {
		c.sets[i] = c.all[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the behaviour counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the behaviour counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetEnabled turns the cache on or off; when off, every access goes to
// the bus directly (the LEON cache control register's disable mode).
func (c *Cache) SetEnabled(on bool) { c.enabled = on }

// Enabled reports whether the cache is on.
func (c *Cache) Enabled() bool { return c.enabled }

func (c *Cache) index(addr uint32) (set uint32, tag uint32, off uint32) {
	off = addr & c.offMask
	set = (addr >> c.lineShift) & c.setMask
	tag = addr >> c.setShift
	return
}

// lookup returns the way holding addr, or -1.
func (c *Cache) lookup(set, tag uint32) int {
	for w := range c.sets[set] {
		if l := &c.sets[set][w]; l.valid && l.tag == tag {
			return w
		}
	}
	return -1
}

// victim picks the way to evict in set.
func (c *Cache) victim(set uint32) int {
	ways := c.sets[set]
	// Prefer an invalid way.
	for w := range ways {
		if !ways[w].valid {
			return w
		}
	}
	switch c.cfg.Replacement {
	case RoundRobin:
		w := c.rrNext[set]
		c.rrNext[set] = (w + 1) % c.cfg.Assoc
		return w
	case Random:
		c.rnd ^= c.rnd << 13
		c.rnd ^= c.rnd >> 17
		c.rnd ^= c.rnd << 5
		return int(c.rnd) & (c.cfg.Assoc - 1)
	default: // LRU
		oldest, w := ways[0].age, 0
		for i := 1; i < len(ways); i++ {
			if ways[i].age < oldest {
				oldest, w = ways[i].age, i
			}
		}
		return w
	}
}

// fill brings the line containing addr into the cache, returning the
// way and the bus cycles spent (including any write-back).
func (c *Cache) fill(addr uint32) (int, int, error) {
	set, tag, _ := c.index(addr)
	w := c.victim(set)
	l := &c.sets[set][w]
	cycles := 0
	if l.valid && l.dirty {
		wb, err := c.writeBackLine(set, l)
		cycles += wb
		if err != nil {
			return w, cycles, err
		}
	}
	lineAddr := addr &^ (uint32(c.cfg.LineBytes) - 1)
	words := make([]uint32, c.cfg.LineBytes/4)
	n, err := c.bus.ReadBurst(lineAddr, words)
	cycles += n
	if err != nil {
		l.valid = false
		return w, cycles, err
	}
	for i, v := range words {
		putBE32(l.data[i*4:], v)
	}
	l.valid, l.dirty, l.tag = true, false, tag
	c.tick++
	l.age = c.tick
	c.stats.Fills++
	return w, cycles, nil
}

func (c *Cache) writeBackLine(set uint32, l *line) (int, error) {
	addr := l.tag<<c.setShift | set<<c.lineShift
	cycles := 0
	for i := 0; i < c.cfg.LineBytes; i += 4 {
		n, err := c.bus.Write(addr+uint32(i), getBE32(l.data[i:]), amba.SizeWord)
		cycles += n
		if err != nil {
			return cycles, err
		}
	}
	c.stats.WriteBacks++
	l.dirty = false
	return cycles, nil
}

// getBE32/putBE32 go through encoding/binary so the compiler emits a
// single (byte-swapped) 32-bit load/store instead of four byte ops.
func getBE32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

func putBE32(b []byte, v uint32) { binary.BigEndian.PutUint32(b, v) }

// Read performs a cached read of the given size. The returned cycle
// count includes the 1-cycle hit access plus any fill traffic.
func (c *Cache) Read(addr uint32, size amba.Size) (uint32, int, error) {
	if !c.enabled {
		return c.bus.Read(addr, size)
	}
	// Direct-mapped hit fast path: same accounting as the general
	// path below (Hits++, tick/age update, 1 cycle) without the
	// two-level set/way indexing.
	if c.direct {
		l := &c.all[(addr>>c.lineShift)&c.setMask]
		if l.valid && l.tag == addr>>c.setShift {
			c.stats.Hits++
			c.tick++
			l.age = c.tick
			return extract(getBE32(l.data[addr&c.offMask&^3:]), addr, size), 1, nil
		}
	}
	set, tag, off := c.index(addr)
	w := c.lookup(set, tag)
	cycles := 1
	if w < 0 {
		c.stats.Misses++
		var n int
		var err error
		w, n, err = c.fill(addr)
		cycles += n
		if err != nil {
			return 0, cycles, err
		}
	} else {
		c.stats.Hits++
		c.tick++
		c.sets[set][w].age = c.tick
	}
	l := &c.sets[set][w]
	return extract(getBE32(l.data[off&^3:]), addr, size), cycles, nil
}

// extract narrows an aligned big-endian word to the addressed byte,
// halfword or word.
func extract(word, addr uint32, size amba.Size) uint32 {
	switch size {
	case amba.SizeWord:
		return word
	case amba.SizeHalf:
		return word >> ((2 - addr&2) * 8) & 0xFFFF
	default:
		return word >> ((3 - addr&3) * 8) & 0xFF
	}
}

// FetchWord reads the aligned word containing addr for instruction
// fetch. It is behaviourally identical to Read(addr, amba.SizeWord) —
// same cycle accounting, statistics and replacement-state updates — but
// it is a concrete method the CPU's fetch path can call without an
// interface dispatch, and it additionally reports whether the access
// hit a resident line of an enabled cache. The predecode layer uses
// that flag: a predecoded instruction may be reused only against the
// word the cache actually served.
func (c *Cache) FetchWord(addr uint32) (word uint32, cycles int, hit bool, err error) {
	if !c.enabled {
		word, cycles, err = c.bus.Read(addr, amba.SizeWord)
		return word, cycles, false, err
	}
	set := (addr >> c.lineShift) & c.setMask
	tag := addr >> c.setShift
	// Unrolled first-way probe on the flat line array: instruction
	// caches are direct-mapped in every configuration the paper
	// sweeps, so the common case is one compare with no LRU
	// bookkeeping (a single way has no replacement decision to bias).
	l0 := &c.all[set*c.assoc]
	if l0.valid && l0.tag == tag {
		c.stats.Hits++
		if !c.direct {
			c.tick++
			l0.age = c.tick
		}
		return getBE32(l0.data[addr&c.offMask&^3:]), 1, true, nil
	}
	if !c.direct {
		ways := c.sets[set]
		for w := 1; w < len(ways); w++ {
			if l := &ways[w]; l.valid && l.tag == tag {
				c.stats.Hits++
				c.tick++
				l.age = c.tick
				return getBE32(l.data[addr&c.offMask&^3:]), 1, true, nil
			}
		}
	}
	c.stats.Misses++
	w, n, err := c.fill(addr)
	if err != nil {
		return 0, 1 + n, false, err
	}
	return getBE32(c.sets[set][w].data[addr&c.offMask&^3:]), 1 + n, false, nil
}

// PeekLine returns the resident line containing addr for the
// superblock dispatcher, or ok=false when the fast path does not apply.
// It succeeds only for an enabled, direct-mapped cache with the line
// resident, because in exactly that regime FetchWord's per-word hit is
// pure: 1 cycle, one Hits count, and — direct-mapped — no LRU tick or
// age update. The caller executes straight-line instructions out of the
// returned line and settles the per-word accounting with AddFetchHits;
// any other configuration (miss, disabled, associative) must go through
// FetchWord so fills, stats and replacement state stay exact.
//
// The returned slice aliases the live line storage: it is valid only
// until the next cache operation and must not be written through.
func (c *Cache) PeekLine(addr uint32) ([]byte, bool) {
	if !c.enabled || !c.direct {
		return nil, false
	}
	l := &c.all[(addr>>c.lineShift)&c.setMask]
	if !l.valid || l.tag != addr>>c.setShift {
		return nil, false
	}
	return l.data, true
}

// AddFetchHits credits n instruction fetches served out of a line
// obtained with PeekLine — the bulk form of FetchWord's per-hit
// Hits++ so cache statistics stay identical under block dispatch.
func (c *Cache) AddFetchHits(n uint64) { c.stats.Hits += n }

// FetchCounts returns the running read hit and miss counters. The spin
// fast-forward probe brackets a loop iteration with it: a zero miss
// delta proves every fetch in the iteration was a pure resident hit,
// so replaying the iteration cannot change cache state.
func (c *Cache) FetchCounts() (hits, misses uint64) {
	return c.stats.Hits, c.stats.Misses
}

// Write performs a cached write of the given size and returns the bus
// cycles consumed.
func (c *Cache) Write(addr uint32, val uint32, size amba.Size) (int, error) {
	if !c.enabled {
		return c.bus.Write(addr, val, size)
	}
	// Direct-mapped write-through fast path: identical accounting to
	// the general path below (write-hit/miss stats, tick/age on hit,
	// no write allocate, always through to the bus).
	if c.direct && c.cfg.Write != WriteBack {
		l := &c.all[(addr>>c.lineShift)&c.setMask]
		if l.valid && l.tag == addr>>c.setShift {
			c.stats.WriteHits++
			c.mergeWrite(l, addr&c.offMask, addr, val, size)
			c.tick++
			l.age = c.tick
		} else {
			c.stats.WriteMiss++
		}
		return c.bus.Write(addr, val, size)
	}
	set, tag, off := c.index(addr)
	w := c.lookup(set, tag)
	switch c.cfg.Write {
	case WriteBack:
		cycles := 1
		if w < 0 {
			c.stats.WriteMiss++
			var n int
			var err error
			w, n, err = c.fill(addr) // write allocate
			cycles += n
			if err != nil {
				return cycles, err
			}
		} else {
			c.stats.WriteHits++
		}
		l := &c.sets[set][w]
		c.mergeWrite(l, off, addr, val, size)
		l.dirty = true
		c.tick++
		l.age = c.tick
		return cycles, nil
	default: // WriteThrough, no write allocate
		if w >= 0 {
			c.stats.WriteHits++
			l := &c.sets[set][w]
			c.mergeWrite(l, off, addr, val, size)
			c.tick++
			l.age = c.tick
		} else {
			c.stats.WriteMiss++
		}
		return c.bus.Write(addr, val, size)
	}
}

func (c *Cache) mergeWrite(l *line, off, addr, val uint32, size amba.Size) {
	if size == amba.SizeWord {
		putBE32(l.data[off&^3:], val) // full word: no read-merge needed
		return
	}
	word := getBE32(l.data[off&^3:])
	switch size {
	case amba.SizeHalf:
		shift := (2 - addr&2) * 8
		word = word&^(0xFFFF<<shift) | val&0xFFFF<<shift
	default:
		shift := (3 - addr&3) * 8
		word = word&^(0xFF<<shift) | val&0xFF<<shift
	}
	putBE32(l.data[off&^3:], word)
}

// Flush invalidates the whole cache (the FLUSH instruction and the
// boot-code "flush" of Fig. 5), writing back dirty lines first when the
// policy requires it. It returns the bus cycles spent.
func (c *Cache) Flush() (int, error) {
	cycles := 0
	for set := range c.sets {
		for w := range c.sets[set] {
			l := &c.sets[set][w]
			if l.valid && l.dirty {
				n, err := c.writeBackLine(uint32(set), l)
				cycles += n
				if err != nil {
					return cycles, err
				}
			}
			l.valid = false
		}
	}
	c.stats.Flushes++
	return cycles, nil
}

// Contains reports whether addr currently hits in the cache (test and
// diagnostic aid; does not touch the stats or LRU state).
func (c *Cache) Contains(addr uint32) bool {
	set, tag, _ := c.index(addr)
	return c.lookup(set, tag) >= 0
}
