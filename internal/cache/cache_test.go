package cache

import (
	"testing"
	"testing/quick"

	"liquidarch/internal/amba"
	"liquidarch/internal/mem"
)

// testBus builds an AHB with 64 KB of SRAM at 0.
func testBus(t *testing.T) (*amba.AHB, *mem.SRAM) {
	t.Helper()
	bus := amba.NewAHB()
	ram := mem.NewSRAM(64 << 10)
	if err := bus.Map("sram", 0, 64<<10, ram); err != nil {
		t.Fatal(err)
	}
	return bus, ram
}

func leonDCache() Config {
	return Config{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 1},
		{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 4},
		{SizeBytes: 4 << 10, LineBytes: 16, Assoc: 2, Replacement: RoundRobin, Write: WriteBack},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 1},
		{SizeBytes: 3000, LineBytes: 32, Assoc: 1},
		{SizeBytes: 1 << 10, LineBytes: 2, Assoc: 1},
		{SizeBytes: 1 << 10, LineBytes: 24, Assoc: 1},
		{SizeBytes: 1 << 10, LineBytes: 2 << 10, Assoc: 1},
		{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 0},
		{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%v) succeeded, want error", c)
		}
	}
	c := Config{SizeBytes: 2 << 10, LineBytes: 32, Assoc: 2}
	if c.Lines() != 64 || c.Sets() != 32 {
		t.Errorf("Lines=%d Sets=%d", c.Lines(), c.Sets())
	}
}

func TestReadMissThenHit(t *testing.T) {
	bus, ram := testBus(t)
	ram.Poke32(0x100, 0xCAFEBABE)
	c, err := New(leonDCache(), bus)
	if err != nil {
		t.Fatal(err)
	}
	v, missCycles, err := c.Read(0x100, amba.SizeWord)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("miss read = %#x, %v", v, err)
	}
	v, hitCycles, err := c.Read(0x100, amba.SizeWord)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("hit read = %#x, %v", v, err)
	}
	if hitCycles != 1 {
		t.Errorf("hit cost = %d cycles, want 1", hitCycles)
	}
	if missCycles <= hitCycles {
		t.Errorf("miss (%d) not slower than hit (%d)", missCycles, hitCycles)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Whole line resident: neighbours hit.
	if !c.Contains(0x110) {
		t.Error("line neighbour not resident after fill")
	}
}

func TestSubWordReads(t *testing.T) {
	bus, ram := testBus(t)
	ram.Poke32(0, 0xA1B2C3D4)
	c, _ := New(leonDCache(), bus)
	if v, _, _ := c.Read(0, amba.SizeByte); v != 0xA1 {
		t.Errorf("byte 0 = %#x", v)
	}
	if v, _, _ := c.Read(3, amba.SizeByte); v != 0xD4 {
		t.Errorf("byte 3 = %#x", v)
	}
	if v, _, _ := c.Read(2, amba.SizeHalf); v != 0xC3D4 {
		t.Errorf("half 2 = %#x", v)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	bus, ram := testBus(t)
	c, _ := New(leonDCache(), bus)
	// Write miss: memory updated, line NOT allocated.
	if _, err := c.Write(0x200, 0x1234, amba.SizeWord); err != nil {
		t.Fatal(err)
	}
	if c.Contains(0x200) {
		t.Error("write-through no-allocate cache allocated on write miss")
	}
	if v, _ := ram.Peek32(0x200); v != 0x1234 {
		t.Errorf("memory = %#x after write-through", v)
	}
	// Bring the line in, then write hit: both cache and memory updated.
	c.Read(0x200, amba.SizeWord)
	if _, err := c.Write(0x200, 0x5678, amba.SizeWord); err != nil {
		t.Fatal(err)
	}
	if v, _ := ram.Peek32(0x200); v != 0x5678 {
		t.Errorf("memory = %#x after write hit", v)
	}
	if v, _, _ := c.Read(0x200, amba.SizeWord); v != 0x5678 {
		t.Errorf("cache = %#x after write hit", v)
	}
	st := c.Stats()
	if st.WriteMiss != 1 || st.WriteHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteBackAllocatesAndDefersMemory(t *testing.T) {
	bus, ram := testBus(t)
	cfg := leonDCache()
	cfg.Write = WriteBack
	c, _ := New(cfg, bus)
	if _, err := c.Write(0x300, 0xFEED, amba.SizeWord); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(0x300) {
		t.Error("write-back cache did not allocate on write miss")
	}
	if v, _ := ram.Peek32(0x300); v != 0 {
		t.Errorf("memory = %#x before eviction, want 0 (deferred)", v)
	}
	// Evict by touching the conflicting line (same set, different tag).
	conflict := uint32(0x300 + cfg.SizeBytes)
	c.Read(conflict, amba.SizeWord)
	if v, _ := ram.Peek32(0x300); v != 0xFEED {
		t.Errorf("memory = %#x after eviction, want 0xFEED", v)
	}
	if c.Stats().WriteBacks != 1 {
		t.Errorf("WriteBacks = %d", c.Stats().WriteBacks)
	}
}

func TestFlushWritesBackDirtyLines(t *testing.T) {
	bus, ram := testBus(t)
	cfg := leonDCache()
	cfg.Write = WriteBack
	c, _ := New(cfg, bus)
	c.Write(0x400, 0xAB, amba.SizeWord)
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, _ := ram.Peek32(0x400); v != 0xAB {
		t.Errorf("memory = %#x after flush", v)
	}
	if c.Contains(0x400) {
		t.Error("line still resident after flush")
	}
	if c.Stats().Flushes != 1 {
		t.Errorf("Flushes = %d", c.Stats().Flushes)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	bus, _ := testBus(t)
	cfg := Config{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 1}
	c, _ := New(cfg, bus)
	a, b := uint32(0), uint32(1<<10) // same set, different tags
	c.Read(a, amba.SizeWord)
	c.Read(b, amba.SizeWord)
	if c.Contains(a) {
		t.Error("direct-mapped cache kept both conflicting lines")
	}
	if !c.Contains(b) {
		t.Error("most recent line evicted")
	}
}

func TestTwoWayLRUKeepsBoth(t *testing.T) {
	bus, _ := testBus(t)
	cfg := Config{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 2, Replacement: LRU}
	c, _ := New(cfg, bus)
	a, b, d := uint32(0), uint32(512), uint32(1024) // all map to set 0
	c.Read(a, amba.SizeWord)
	c.Read(b, amba.SizeWord)
	if !c.Contains(a) || !c.Contains(b) {
		t.Fatal("2-way cache did not keep two conflicting lines")
	}
	// Touch a, then load d: b (LRU) must be evicted.
	c.Read(a, amba.SizeWord)
	c.Read(d, amba.SizeWord)
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Errorf("LRU eviction wrong: a=%v b=%v d=%v",
			c.Contains(a), c.Contains(b), c.Contains(d))
	}
}

func TestRoundRobinAndRandomReplace(t *testing.T) {
	bus, _ := testBus(t)
	for _, pol := range []Replacement{RoundRobin, Random} {
		cfg := Config{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 2, Replacement: pol}
		c, _ := New(cfg, bus)
		// Fill both ways and force an eviction; exactly one of a,b
		// survives alongside d.
		a, b, d := uint32(0), uint32(512), uint32(1024)
		c.Read(a, amba.SizeWord)
		c.Read(b, amba.SizeWord)
		c.Read(d, amba.SizeWord)
		if !c.Contains(d) {
			t.Errorf("%v: new line not resident", pol)
		}
		if c.Contains(a) == c.Contains(b) {
			t.Errorf("%v: expected exactly one victim among a,b", pol)
		}
	}
}

func TestDisabledCacheBypasses(t *testing.T) {
	bus, ram := testBus(t)
	c, _ := New(leonDCache(), bus)
	c.SetEnabled(false)
	if c.Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	ram.Poke32(0x500, 7)
	if v, _, _ := c.Read(0x500, amba.SizeWord); v != 7 {
		t.Error("disabled cache returned wrong data")
	}
	if c.Contains(0x500) {
		t.Error("disabled cache allocated a line")
	}
	if st := c.Stats(); st.Hits+st.Misses != 0 {
		t.Errorf("disabled cache recorded stats %+v", st)
	}
}

// TestFig8WorkingSetCliff reproduces the shape of the paper's Figure 8
// in miniature at the cache level: a working set of 4 KB misses on
// every revisit in a 1 KB or 2 KB cache but, after the cold fill, never
// misses in a 4 KB+ cache.
func TestFig8WorkingSetCliff(t *testing.T) {
	const workingSet = 4 << 10
	missRatios := map[int]float64{}
	for _, size := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		bus, _ := testBus(t)
		c, _ := New(Config{SizeBytes: size, LineBytes: 32, Assoc: 1}, bus)
		// Two full passes; the second pass is what the steady-state
		// loop of Fig. 7 sees.
		for pass := 0; pass < 2; pass++ {
			c.ResetStats()
			for addr := uint32(0); addr < workingSet; addr += 32 {
				if _, _, err := c.Read(addr, amba.SizeWord); err != nil {
					t.Fatal(err)
				}
			}
		}
		missRatios[size] = c.Stats().MissRatio()
	}
	for _, small := range []int{1 << 10, 2 << 10} {
		if missRatios[small] != 1.0 {
			t.Errorf("%d B cache: steady-state miss ratio %.2f, want 1.0", small, missRatios[small])
		}
	}
	for _, big := range []int{4 << 10, 8 << 10, 16 << 10} {
		if missRatios[big] != 0.0 {
			t.Errorf("%d B cache: steady-state miss ratio %.2f, want 0.0", big, missRatios[big])
		}
	}
}

// Property: a cached read always returns what an uncached read of the
// same address returns, across random interleavings of reads/writes.
func TestCoherenceWithMemoryProperty(t *testing.T) {
	for _, wp := range []WritePolicy{WriteThrough, WriteBack} {
		bus, _ := testBus(t)
		shadowBus, shadowRAM := testBus(t)
		_ = shadowRAM
		cfg := Config{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 2, Write: wp}
		c, _ := New(cfg, bus)
		f := func(ops []struct {
			Addr  uint16
			Val   uint32
			Write bool
		}) bool {
			for _, op := range ops {
				addr := uint32(op.Addr) &^ 3 % (64 << 10)
				if op.Write {
					if _, err := c.Write(addr, op.Val, amba.SizeWord); err != nil {
						return false
					}
					if _, err := shadowBus.Write(addr, op.Val, amba.SizeWord); err != nil {
						return false
					}
				} else {
					v, _, err := c.Read(addr, amba.SizeWord)
					if err != nil {
						return false
					}
					want, _, err := shadowBus.Read(addr, amba.SizeWord)
					if err != nil || v != want {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", wp, err)
		}
	}
}

func TestStringers(t *testing.T) {
	c := Config{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 2, Replacement: RoundRobin, Write: WriteBack}
	if got := c.String(); got != "4096B/32B-line/2-way/rr/write-back" {
		t.Errorf("Config.String() = %q", got)
	}
	if LRU.String() != "lru" || Random.String() != "rnd" || Replacement(9).String() == "" {
		t.Error("Replacement.String() broken")
	}
	if WriteThrough.String() != "write-through" || WriteBack.String() != "write-back" {
		t.Error("WritePolicy.String() broken")
	}
}

func TestMissRatioEmpty(t *testing.T) {
	if (Stats{}).MissRatio() != 0 {
		t.Error("MissRatio of empty stats not 0")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bus, _ := testBus(t)
	if _, err := New(Config{SizeBytes: 100, LineBytes: 32, Assoc: 1}, bus); err == nil {
		t.Error("New accepted invalid config")
	}
}
