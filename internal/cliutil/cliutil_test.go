package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"liquidarch/internal/cache"
)

func TestConfigFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	build := ConfigFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DCache.SizeBytes != 4096 || cfg.ICache.SizeBytes != 1024 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.CPU.NWindows != 8 || !cfg.CPU.MulDiv || cfg.CPU.MAC {
		t.Errorf("cpu defaults: %+v", cfg.CPU)
	}
}

func TestConfigFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	build := ConfigFlags(fs)
	args := []string{"-dcache", "8192", "-dassoc", "2", "-dwriteback",
		"-mac", "-windows", "16", "-depth", "7", "-burst", "8"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	cfg, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DCache.SizeBytes != 8192 || cfg.DCache.Assoc != 2 || cfg.DCache.Write != cache.WriteBack {
		t.Errorf("dcache: %+v", cfg.DCache)
	}
	if !cfg.CPU.MAC || cfg.CPU.NWindows != 16 || cfg.CPU.Depth() != 7 || cfg.BurstWords != 8 {
		t.Errorf("cfg: %+v", cfg)
	}
	// Depth must flow into the timing table.
	if cfg.CPU.Timing.Branch != 2 {
		t.Errorf("branch penalty = %d", cfg.CPU.Timing.Branch)
	}
}

func TestConfigFlagsValidation(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	build := ConfigFlags(fs)
	if err := fs.Parse([]string{"-dcache", "3000"}); err != nil {
		t.Fatal(err)
	}
	if _, err := build(); err == nil {
		t.Error("invalid cache size accepted")
	}
}

func TestReadWriteFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	if err := WriteOutput(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInput(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q", got)
	}
	if _, err := ReadInput(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file read")
	}
	if err := WriteOutput(filepath.Join(dir, "no", "such", "dir", "f"), nil); err == nil {
		t.Error("write into missing dir succeeded")
	}
}

func TestReadInputStdin(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.Write([]byte("from stdin"))
		w.Close()
	}()
	got, err := ReadInput("-")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "from stdin" {
		t.Errorf("got %q", got)
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, [][]string{
		{"name", "value"},
		{"alpha", "1"},
		{"b", "22"},
	})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "----") {
		t.Errorf("header/underline wrong:\n%s", out)
	}
	if !strings.Contains(lines[2], "alpha") {
		t.Errorf("row missing:\n%s", out)
	}
}
