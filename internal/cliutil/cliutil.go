// Package cliutil holds the flag plumbing shared by the liquid-*
// command-line tools: configuration flags, file helpers and table
// printing.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"liquidarch/internal/cache"
	"liquidarch/internal/cpu"
	"liquidarch/internal/leon"
)

// ConfigFlags registers processor-configuration flags on fs and
// returns a builder to call after parsing.
func ConfigFlags(fs *flag.FlagSet) func() (leon.Config, error) {
	dcache := fs.Int("dcache", 4096, "data cache size in bytes")
	dline := fs.Int("dline", 32, "data cache line size in bytes")
	dassoc := fs.Int("dassoc", 1, "data cache associativity")
	dwb := fs.Bool("dwriteback", false, "data cache write-back (default write-through)")
	icache := fs.Int("icache", 1024, "instruction cache size in bytes")
	iline := fs.Int("iline", 32, "instruction cache line size in bytes")
	windows := fs.Int("windows", 8, "register window count")
	mac := fs.Bool("mac", false, "enable the Liquid MAC instruction unit")
	muldiv := fs.Bool("muldiv", true, "enable hardware multiply/divide")
	depth := fs.Int("depth", 5, "pipeline depth (3-8)")
	burst := fs.Int("burst", 4, "SDRAM adapter read burst in 32-bit words")

	return func() (leon.Config, error) {
		cfg := leon.DefaultConfig()
		cfg.DCache = cache.Config{SizeBytes: *dcache, LineBytes: *dline, Assoc: *dassoc}
		if *dwb {
			cfg.DCache.Write = cache.WriteBack
		}
		cfg.ICache = cache.Config{SizeBytes: *icache, LineBytes: *iline, Assoc: 1}
		cfg.CPU.NWindows = *windows
		cfg.CPU.MAC = *mac
		cfg.CPU.MulDiv = *muldiv
		cfg.CPU.PipelineDepth = *depth
		cfg.CPU.Timing = cpu.TimingForDepth(*depth)
		cfg.BurstWords = *burst
		if err := cfg.Validate(); err != nil {
			return leon.Config{}, err
		}
		return cfg, nil
	}
}

// ReadInput reads a file, or stdin when path is "-" or empty.
func ReadInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// WriteOutput writes to a file, or stdout when path is "-" or empty.
func WriteOutput(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// MustDuration parses a duration flag value, exiting the process on a
// malformed one — for flags whose zero value is not an acceptable
// fallback.
func MustDuration(s string) time.Duration {
	d, err := time.ParseDuration(s)
	if err != nil {
		Fatalf("bad duration %q: %v", s, err)
	}
	return d
}

// Fatalf prints an error and exits non-zero.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// Table writes rows as an aligned table; the first row is the header,
// underlined.
func Table(w io.Writer, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, row := range rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
		if i == 0 {
			under := make([]string, len(row))
			for j, h := range row {
				under[j] = strings.Repeat("-", len(h))
			}
			fmt.Fprintln(tw, strings.Join(under, "\t"))
		}
	}
	tw.Flush()
}
