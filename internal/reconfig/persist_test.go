package reconfig

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"liquidarch/internal/leon"
	"liquidarch/internal/metrics/eventlog"
	"liquidarch/internal/synth"
)

// TestImageCodecRoundTrip: decode(encode(img)) reproduces the image
// exactly, for a couple of distinct configurations.
func TestImageCodecRoundTrip(t *testing.T) {
	for _, size := range []int{1 << 10, 16 << 10} {
		img, err := synth.Synthesize(cfgWithDCache(size), testSynth)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := encodeImage(img)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeImage(blob)
		if err != nil {
			t.Fatalf("decode of freshly encoded image: %v", err)
		}
		if !reflect.DeepEqual(got, img) {
			t.Errorf("round trip mutated the image:\n got %+v\nwant %+v", got, img)
		}
	}
}

// TestLoadSkipsCorruptEntries is the hardening regression: one
// truncated file and one bit-flipped file in the store must not abort
// the warm-load — they are skipped, counted, and logged, and every
// healthy entry still loads.
func TestLoadSkipsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(NewCache(0), testSynth)
	cfgs := []leon.Config{cfgWithDCache(1 << 10), cfgWithDCache(2 << 10),
		cfgWithDCache(4 << 10), cfgWithDCache(8 << 10)}
	if err := m.Pregenerate(cfgs); err != nil {
		t.Fatal(err)
	}
	if err := m.Cache().Save(dir); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*"+imageExt))
	if len(names) != 4 {
		t.Fatalf("store holds %d files", len(names))
	}

	// Truncate the first entry mid-file.
	blob, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(names[0], blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Flip one bit deep inside the second entry's bitstream.
	blob, err = os.ReadFile(names[1])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-16] ^= 0x40
	if err := os.WriteFile(names[1], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := NewCache(0)
	log := eventlog.New(64)
	fresh.SetLog(log)
	if err := fresh.Load(dir); err != nil {
		t.Fatalf("Load aborted on corrupt entries: %v", err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("loaded %d entries, want the 2 healthy ones", fresh.Len())
	}
	st := fresh.Stats()
	if st.PersistLoaded != 2 || st.PersistSkipped != 2 {
		t.Errorf("stats loaded=%d skipped=%d, want 2/2", st.PersistLoaded, st.PersistSkipped)
	}
	var warned int
	for _, e := range log.Events() {
		if e.Level == eventlog.Warn && strings.Contains(e.Msg, "skipped") {
			warned++
		}
	}
	if warned != 2 {
		t.Errorf("event log recorded %d skip warnings, want 2", warned)
	}
}

// TestLoadRejectsMisfiledAndMismatched: an entry renamed to the wrong
// content address, or re-keyed for a different config, is skipped.
func TestLoadRejectsMisfiledAndMismatched(t *testing.T) {
	dir := t.TempDir()
	img, err := synth.Synthesize(cfgWithDCache(1<<10), testSynth)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeImageFile(dir, img); err != nil {
		t.Fatal(err)
	}
	// Misfiled: valid contents under another key's address.
	orig := filepath.Join(dir, imageFileName(img.Key))
	misfiled := filepath.Join(dir, imageFileName("some-other-key"))
	blob, _ := os.ReadFile(orig)
	if err := os.WriteFile(misfiled, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	// Key-mismatched: the key field claims a different configuration
	// (re-encoded so the checksum is valid — only the key lies).
	lying := *img
	lying.Key = synth.ConfigKey(cfgWithDCache(8 << 10))
	lieBlob, err := encodeImage(&lying)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, imageFileName(lying.Key)), lieBlob, 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewCache(0)
	if err := c.Load(dir); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("loaded %d entries, want only the honest one", c.Len())
	}
	if st := c.Stats(); st.PersistSkipped != 2 {
		t.Errorf("PersistSkipped = %d, want 2", st.PersistSkipped)
	}
	if _, ok := c.Get(img.Key); !ok {
		t.Error("honest entry missing after load")
	}
}

// TestWriteThroughAndWarmLoad: with SetDir, every synthesis lands on
// disk immediately (atomic rename, no temp litter), and a fresh cache
// warm-loads it with PersistHits accounting on later hits.
func TestWriteThroughAndWarmLoad(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	m := NewManager(c, testSynth)
	cfg := cfgWithDCache(4 << 10)
	img, _, err := m.GetOrSynthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(names) != 1 || filepath.Base(names[0]) != imageFileName(img.Key) {
		t.Fatalf("store contents after write-through: %v", names)
	}
	if st := c.Stats(); st.PersistWrites != 1 || st.PersistErrors != 0 {
		t.Errorf("writes=%d errors=%d", st.PersistWrites, st.PersistErrors)
	}

	fresh := NewCache(0)
	if err := fresh.Load(dir); err != nil {
		t.Fatal(err)
	}
	got, ok := fresh.Get(img.Key)
	if !ok || !bytes.Equal(got.Bitstream, img.Bitstream) {
		t.Fatal("warm-loaded bitstream differs")
	}
	if st := fresh.Stats(); st.PersistHits != 1 {
		t.Errorf("PersistHits = %d after a hit on a disk-loaded entry", st.PersistHits)
	}

	// SetDir on a cache that already holds entries flushes them.
	dir2 := t.TempDir()
	if err := fresh.SetDir(dir2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, imageFileName(img.Key))); err != nil {
		t.Errorf("SetDir did not flush existing entries: %v", err)
	}
}

// FuzzImageCodec fuzzes the persisted-image decoder: arbitrary bytes
// must never panic, and anything that decodes must re-encode and
// decode to the same image (key/config/bitstream invariants hold).
func FuzzImageCodec(f *testing.F) {
	for _, size := range []int{1 << 10, 8 << 10} {
		img, err := synth.Synthesize(cfgWithDCache(size), testSynth)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := encodeImage(img)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte("LQI1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := decodeImage(data)
		if err != nil {
			return
		}
		blob, err := encodeImage(img)
		if err != nil {
			t.Fatalf("decoded image does not re-encode: %v", err)
		}
		again, err := decodeImage(blob)
		if err != nil {
			t.Fatalf("re-encoded image does not decode: %v", err)
		}
		if again.Key != img.Key || !bytes.Equal(again.Bitstream, img.Bitstream) ||
			!reflect.DeepEqual(again.Config, img.Config) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", again, img)
		}
	})
}
