package reconfig

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/synth"
)

// benchSpace is the configuration sweep the cold/warm benchmark walks:
// five D-cache sizes crossed with two I-cache sizes, the "many points
// in a configuration space" picture of §1 at small scale (all ten
// points fit the modelled device).
func benchSpace() []leon.Config {
	var space []leon.Config
	for _, ic := range []int{1 << 10, 2 << 10} {
		for _, dc := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
			cfg := leon.DefaultConfig()
			cfg.ICache.SizeBytes = ic
			cfg.DCache.SizeBytes = dc
			space = append(space, cfg)
		}
	}
	return space
}

// BenchmarkReconfigColdWarm measures reconfiguration as a service end
// to end: a cold manager pregenerates the sweep into a persistent
// store (each point costs one modelled ≈1 h synthesis), then a fresh
// manager — a restarted node — warm-loads the store and serves a
// request sweep (three passes over the space plus one novel point).
// The reported metrics are the warm hit ratio and the modelled tool
// hours the cache avoided; `make reconfig-smoke` arms the gate
// (LIQUID_RECONFIG_GATE=1), which requires a ≥90% warm hit ratio and
// exactly one warm synthesis (the novel point), and emits the figures
// to BENCH_reconfig.json (LIQUID_RECONFIG_JSON).
func BenchmarkReconfigColdWarm(b *testing.B) {
	opts := synth.Options{BitstreamBytes: 4096} // TimeScale 0: modelled hours, no real sleep
	space := benchSpace()

	for i := 0; i < b.N; i++ {
		dir := b.TempDir()

		// Cold: pregenerate the whole space through the bounded pool,
		// writing every image through to the store.
		cold := NewManagerWorkers(NewCache(0), opts, 4)
		if err := cold.Cache().SetDir(dir); err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		if err := cold.Pregenerate(space); err != nil {
			b.Fatal(err)
		}
		coldWall := time.Since(t0)
		if got := cold.Stats().SynthRuns; got != uint64(len(space)) {
			b.Fatalf("cold pregenerate ran %d syntheses for %d points", got, len(space))
		}

		// Warm: a restarted node loads the store and serves the sweep.
		warm := NewManagerWorkers(NewCache(0), opts, 4)
		if err := warm.Cache().Load(dir); err != nil {
			b.Fatal(err)
		}
		novel := leon.DefaultConfig()
		novel.BurstWords = 8 // outside the pregenerated sweep
		requests := 0
		t0 = time.Now()
		for pass := 0; pass < 3; pass++ {
			for _, cfg := range space {
				if _, _, err := warm.GetOrSynthesize(cfg); err != nil {
					b.Fatal(err)
				}
				requests++
			}
		}
		if _, _, err := warm.GetOrSynthesize(novel); err != nil {
			b.Fatal(err)
		}
		requests++
		warmWall := time.Since(t0)

		cs := warm.Cache().Stats()
		ms := warm.Stats()
		ratio := float64(cs.Hits) / float64(requests)
		b.ReportMetric(ratio*100, "hit%")
		b.ReportMetric(cs.SavedTime.Hours(), "modelled-h-saved")

		if i == b.N-1 {
			gateAndEmitReconfigBench(b, reconfigBenchFigures{
				points:    len(space),
				requests:  requests,
				hits:      cs.Hits,
				ratio:     ratio,
				savedH:    cs.SavedTime.Hours(),
				warmRuns:  ms.SynthRuns,
				loaded:    cs.PersistLoaded,
				coldWall:  coldWall,
				warmWall:  warmWall,
				coalesced: ms.Coalesced,
			})
		}
	}
}

type reconfigBenchFigures struct {
	points    int
	requests  int
	hits      uint64
	ratio     float64
	savedH    float64
	warmRuns  uint64
	loaded    uint64
	coldWall  time.Duration
	warmWall  time.Duration
	coalesced uint64
}

// benchReconfigJSON is the on-disk shape of BENCH_reconfig.json.
type benchReconfigJSON struct {
	Figure string `json:"figure"`
	Data   struct {
		SpacePoints        int     `json:"SpacePoints"`
		WarmRequests       int     `json:"WarmRequests"`
		WarmHits           uint64  `json:"WarmHits"`
		WarmHitRatio       float64 `json:"WarmHitRatio"`
		ModelledHoursSaved float64 `json:"ModelledHoursSaved"`
		WarmSynthRuns      uint64  `json:"WarmSynthRuns"`
		ImagesWarmLoaded   uint64  `json:"ImagesWarmLoaded"`
		ColdPregenWallMs   float64 `json:"ColdPregenWallMs"`
		WarmSweepWallMs    float64 `json:"WarmSweepWallMs"`
		HostCPUs           int     `json:"HostCPUs"`
		Note               string  `json:"Note"`
	} `json:"data"`
}

// gateAndEmitReconfigBench enforces the acceptance bar when the smoke
// gate is armed (LIQUID_RECONFIG_GATE=1, set by `make reconfig-smoke`)
// and emits BENCH_reconfig.json when LIQUID_RECONFIG_JSON names a path.
func gateAndEmitReconfigBench(b *testing.B, f reconfigBenchFigures) {
	if os.Getenv("LIQUID_RECONFIG_GATE") != "" {
		if f.ratio < 0.9 {
			b.Fatalf("reconfig gate: warm hit ratio %.1f%% below the 90%% floor", f.ratio*100)
		}
		if f.warmRuns != 1 {
			b.Fatalf("reconfig gate: warm sweep ran %d syntheses, want exactly 1 (the novel point)", f.warmRuns)
		}
		if f.loaded != uint64(f.points) {
			b.Fatalf("reconfig gate: warm-loaded %d images, want %d", f.loaded, f.points)
		}
		b.Logf("reconfig gate: %.1f%% hit ratio over %d requests, %.0f modelled hours saved, warm sweep %v",
			f.ratio*100, f.requests, f.savedH, f.warmWall)
	}
	out := os.Getenv("LIQUID_RECONFIG_JSON")
	if out == "" {
		return
	}
	var j benchReconfigJSON
	j.Figure = fmt.Sprintf("Reconfiguration as a service: a cold node pregenerates a %d-point configuration sweep into the persistent store, then a restarted node warm-loads it and serves %d reconfigure requests (three passes plus one novel point) — BenchmarkReconfigColdWarm", f.points, f.requests)
	j.Data.SpacePoints = f.points
	j.Data.WarmRequests = f.requests
	j.Data.WarmHits = f.hits
	j.Data.WarmHitRatio = round2(f.ratio)
	j.Data.ModelledHoursSaved = round2(f.savedH)
	j.Data.WarmSynthRuns = f.warmRuns
	j.Data.ImagesWarmLoaded = f.loaded
	j.Data.ColdPregenWallMs = round2(f.coldWall.Seconds() * 1000)
	j.Data.WarmSweepWallMs = round2(f.warmWall.Seconds() * 1000)
	j.Data.HostCPUs = runtime.NumCPU()
	j.Data.Note = "Each point costs one modelled ≈1 h synthesis exactly once, in the cold pregeneration; the restarted node serves every revisit from the warm-loaded content-addressed store in microseconds. ModelledHoursSaved is the tool time the warm sweep would have spent without the cache."
	raw, err := json.MarshalIndent(&j, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		b.Fatalf("reconfig bench: write %s: %v", out, err)
	}
	b.Logf("reconfig bench: wrote %s", out)
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
