package reconfig

import (
	"sync"
	"testing"
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/synth"
)

// slowSynth makes the modelled ≈1 h synthesis take real milliseconds,
// so in-flight states are observable.
var slowSynth = synth.Options{BitstreamBytes: 256, TimeScale: 1e-5} // ≈36 ms per point

// TestSingleflightDedup is the double-synthesis regression: 16
// goroutines missing on the same key must coalesce onto exactly one
// synth.Synthesize call, with the modelled tool time counted once.
// Run under -race this also pins the old unsynchronized stats update.
func TestSingleflightDedup(t *testing.T) {
	m := NewManager(NewCache(0), slowSynth)
	cfg := leon.DefaultConfig()

	const callers = 16
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	imgs := make([]*synth.Image, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			img, _, err := m.GetOrSynthesize(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			imgs[i] = img
		}(i)
	}
	start.Done()
	done.Wait()

	ms := m.Stats()
	if ms.SynthRuns != 1 {
		t.Fatalf("16 concurrent callers ran %d syntheses, want exactly 1", ms.SynthRuns)
	}
	cs := m.Cache().Stats()
	if got := ms.Coalesced + cs.Hits; got != callers-1 {
		t.Errorf("coalesced(%d) + hits(%d) = %d, want %d", ms.Coalesced, cs.Hits, got, callers-1)
	}
	want, _ := synth.Synthesize(cfg, synth.Options{BitstreamBytes: 256})
	if cs.SynthTime != want.SynthTime {
		t.Errorf("SynthTime counted %v, one synthesis is %v", cs.SynthTime, want.SynthTime)
	}
	for i, img := range imgs {
		if img == nil || img.Key != want.Key {
			t.Fatalf("caller %d got image %v", i, img)
		}
	}
	if ms.QueueDepth != 0 || ms.Inflight != 0 {
		t.Errorf("idle manager reports queue=%d inflight=%d", ms.QueueDepth, ms.Inflight)
	}
}

// TestTicketLifecycle drives one miss through Queued/Synthesizing →
// Ready and checks the non-blocking surface: Acquire returns before
// synthesis finishes, State is pollable, Done closes once.
func TestTicketLifecycle(t *testing.T) {
	m := NewManagerWorkers(NewCache(0), slowSynth, 2)
	cfg := leon.DefaultConfig()

	tk, coalesced := m.Acquire(cfg)
	if coalesced {
		t.Fatal("first Acquire coalesced")
	}
	if s := tk.State(); s == TicketReady || s == TicketFailed {
		t.Fatalf("ticket terminal (%v) before synthesis could run", s)
	}
	// A second Acquire while in flight shares the ticket.
	tk2, coalesced := m.Acquire(cfg)
	if !coalesced || tk2 != tk {
		t.Fatalf("concurrent Acquire did not coalesce (ticket %p vs %p)", tk2, tk)
	}
	select {
	case <-tk.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("ticket never completed")
	}
	if tk.State() != TicketReady {
		t.Fatalf("state %v after Done", tk.State())
	}
	img, err := tk.Image()
	if err != nil || img == nil {
		t.Fatalf("Image() = %v, %v", img, err)
	}
	if tk.CacheHit() {
		t.Error("fresh synthesis flagged as cache hit")
	}

	// Now cached: Acquire is immediately Ready and marked a hit.
	tk3, _ := m.Acquire(cfg)
	select {
	case <-tk3.Done():
	default:
		t.Fatal("cached Acquire not immediately done")
	}
	if tk3.State() != TicketReady || !tk3.CacheHit() {
		t.Errorf("cached ticket: state %v hit %v", tk3.State(), tk3.CacheHit())
	}
}

// TestTicketFailure: an unfittable configuration fails its ticket and
// is not cached, and the failure does not wedge the inflight table.
func TestTicketFailure(t *testing.T) {
	m := NewManager(NewCache(0), synth.Options{BitstreamBytes: 256})
	bad := leon.DefaultConfig()
	bad.DCache.SizeBytes = 512 << 10
	tk, _ := m.Acquire(bad)
	<-tk.Done()
	if tk.State() != TicketFailed {
		t.Fatalf("state %v for unfittable config", tk.State())
	}
	if _, err := tk.Image(); err == nil {
		t.Fatal("failed ticket returned no error")
	}
	if m.Cache().Len() != 0 {
		t.Error("failed synthesis left a cache entry")
	}
	// The key is retryable: a new Acquire gets a fresh ticket.
	tk2, coalesced := m.Acquire(bad)
	if coalesced || tk2 == tk {
		t.Error("failed ticket was reused")
	}
	<-tk2.Done()
}

// TestPregenerateParallel: distinct keys synthesize in parallel across
// the pool — the warmup of 6 points must take ~the wall time of
// ceil(6/3) points, not 6 serial points.
func TestPregenerateParallel(t *testing.T) {
	m := NewManagerWorkers(NewCache(0), slowSynth, 3)
	var cfgs []leon.Config
	for _, size := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10} {
		cfg := leon.DefaultConfig()
		cfg.DCache.SizeBytes = size
		cfgs = append(cfgs, cfg)
	}
	one, _ := synth.Synthesize(cfgs[0], synth.Options{BitstreamBytes: 16})
	perPoint := time.Duration(float64(one.SynthTime) * slowSynth.TimeScale)

	begin := time.Now()
	if err := m.Pregenerate(cfgs); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(begin)
	if m.Cache().Len() != len(cfgs) {
		t.Fatalf("cache holds %d of %d images", m.Cache().Len(), len(cfgs))
	}
	if st := m.Stats(); st.SynthRuns != uint64(len(cfgs)) {
		t.Errorf("%d syntheses for %d distinct configs", st.SynthRuns, len(cfgs))
	}
	// Serial would be ≥ 6 points; allow generous scheduling slack but
	// require better than 5x one point (3-wide pool needs ~2x).
	if wall > 5*perPoint {
		t.Errorf("Pregenerate of 6 points on 3 workers took %v (one point ≈ %v): not parallel", wall, perPoint)
	}
}

// TestPregenerateLowestIndexError mirrors bench.forEachPoint: every
// point completes, the first (lowest-index) failure is returned.
func TestPregenerateLowestIndexError(t *testing.T) {
	m := NewManager(NewCache(0), synth.Options{BitstreamBytes: 64})
	good := leon.DefaultConfig()
	bad := leon.DefaultConfig()
	bad.DCache.SizeBytes = 512 << 10
	err := m.Pregenerate([]leon.Config{good, bad})
	if err == nil {
		t.Fatal("Pregenerate swallowed the failure")
	}
	if m.Cache().Len() != 1 {
		t.Errorf("good point not cached alongside the failure (len %d)", m.Cache().Len())
	}
}
