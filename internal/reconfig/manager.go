package reconfig

import (
	"runtime"
	"sync"
	"sync/atomic"

	"liquidarch/internal/leon"
	"liquidarch/internal/synth"
)

// TicketState is the lifecycle of one synthesis request.
type TicketState int32

// Ticket lifecycle, in order. A cache hit jumps straight to Ready.
const (
	TicketQueued TicketState = iota
	TicketSynthesizing
	TicketReady
	TicketFailed
)

func (s TicketState) String() string {
	switch s {
	case TicketQueued:
		return "queued"
	case TicketSynthesizing:
		return "synthesizing"
	case TicketReady:
		return "ready"
	case TicketFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Ticket is a handle on one (possibly shared) synthesis job. Every
// concurrent Acquire for the same configuration key returns the same
// ticket; callers poll State or select on Done, then read Image.
type Ticket struct {
	key   string
	cfg   leon.Config
	state atomic.Int32
	done  chan struct{}
	hit   bool // served straight from the cache, no synthesis
	img   *synth.Image
	err   error
}

// Key returns the canonical configuration key the ticket covers.
func (t *Ticket) Key() string { return t.key }

// State returns the current lifecycle state (safe to poll).
func (t *Ticket) State() TicketState { return TicketState(t.state.Load()) }

// Done is closed when the ticket reaches Ready or Failed.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// CacheHit reports whether the image was served from the cache with no
// synthesis at all.
func (t *Ticket) CacheHit() bool { return t.hit }

// Image returns the synthesized image (or the synthesis error). Only
// valid after Done is closed.
func (t *Ticket) Image() (*synth.Image, error) { return t.img, t.err }

// Manager ties the cache to the synthesis flow as an asynchronous
// service: configurations are synthesized on first use by a bounded
// worker pool, concurrent requests for the same key coalesce onto one
// in-flight ticket (singleflight), and results are served from the
// cache afterwards.
type Manager struct {
	cache   *Cache
	opts    synth.Options
	workers int

	mu        sync.Mutex
	inflight  map[string]*Ticket
	sem       chan struct{} // bounded synthesis pool
	synthRuns uint64        // actual synth.Synthesize invocations
	coalesced uint64        // Acquires that joined an in-flight ticket
	queued    int           // tickets waiting for a pool slot
	running   int           // tickets inside synth.Synthesize
}

// ManagerStats snapshots the synthesis-service counters.
type ManagerStats struct {
	SynthRuns  uint64 // actual synthesis invocations
	Coalesced  uint64 // requests deduplicated onto an in-flight job
	QueueDepth int    // tickets waiting for a pool slot
	Inflight   int    // tickets currently synthesizing
	Workers    int    // pool size
}

// NewManager wraps a cache with synthesis options; the synthesis pool
// is sized to the machine (GOMAXPROCS).
func NewManager(cache *Cache, opts synth.Options) *Manager {
	return NewManagerWorkers(cache, opts, 0)
}

// NewManagerWorkers wraps a cache with an explicit synthesis-pool
// size (n <= 0 picks GOMAXPROCS) — the same bounded-pool shape as
// bench.forEachPoint, shared by every caller of this manager.
func NewManagerWorkers(cache *Cache, opts synth.Options, n int) *Manager {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Manager{
		cache:    cache,
		opts:     opts,
		workers:  n,
		inflight: make(map[string]*Ticket),
		sem:      make(chan struct{}, n),
	}
}

// Cache returns the underlying cache.
func (m *Manager) Cache() *Cache { return m.cache }

// Stats snapshots the service counters (cache counters live on
// Cache().Stats()).
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ManagerStats{
		SynthRuns:  m.synthRuns,
		Coalesced:  m.coalesced,
		QueueDepth: m.queued,
		Inflight:   m.running,
		Workers:    m.workers,
	}
}

// Acquire returns a ticket for cfg without blocking on synthesis. The
// second result reports whether the caller coalesced onto an already
// in-flight job for the same key. A cached configuration returns an
// already-Ready ticket; otherwise the ticket is queued on the pool and
// the caller watches Done (or polls State).
func (m *Manager) Acquire(cfg leon.Config) (*Ticket, bool) {
	key := synth.ConfigKey(cfg)
	m.mu.Lock()
	if t, ok := m.inflight[key]; ok {
		m.coalesced++
		m.mu.Unlock()
		return t, true
	}
	if img, ok := m.cache.Get(key); ok {
		m.mu.Unlock()
		t := &Ticket{key: key, cfg: cfg, done: make(chan struct{}), hit: true, img: img}
		t.state.Store(int32(TicketReady))
		close(t.done)
		return t, false
	}
	t := &Ticket{key: key, cfg: cfg, done: make(chan struct{})}
	m.inflight[key] = t
	m.queued++
	m.mu.Unlock()
	go m.synthesize(t)
	return t, false
}

// synthesize runs one ticket through the bounded pool.
func (m *Manager) synthesize(t *Ticket) {
	m.sem <- struct{}{}
	defer func() { <-m.sem }()

	m.mu.Lock()
	m.queued--
	m.running++
	m.synthRuns++
	m.mu.Unlock()
	t.state.Store(int32(TicketSynthesizing))

	img, err := synth.Synthesize(t.cfg, m.opts)

	if err == nil {
		m.cache.addSynthesized(img)
		t.img = img
	} else {
		t.err = err
	}
	m.mu.Lock()
	delete(m.inflight, t.key)
	m.running--
	m.mu.Unlock()
	if err != nil {
		t.state.Store(int32(TicketFailed))
	} else {
		t.state.Store(int32(TicketReady))
	}
	close(t.done)
}

// GetOrSynthesize returns the image for cfg, synthesizing (≈1 modelled
// hour) on a miss. Concurrent callers for the same configuration share
// one synthesis; the hit result is true only when the image came
// straight from the cache.
func (m *Manager) GetOrSynthesize(cfg leon.Config) (*synth.Image, bool, error) {
	t, _ := m.Acquire(cfg)
	<-t.Done()
	img, err := t.Image()
	if err != nil {
		return nil, false, err
	}
	return img, t.CacheHit(), nil
}

// Pregenerate synthesizes every configuration in the space up front —
// the paper's offline population of the cache — in parallel across the
// bounded pool. Like bench.forEachPoint, it waits for every point and
// returns the error of the lowest-index failing configuration.
func (m *Manager) Pregenerate(cfgs []leon.Config) error {
	tickets := make([]*Ticket, len(cfgs))
	for i, cfg := range cfgs {
		tickets[i], _ = m.Acquire(cfg)
	}
	var firstErr error
	for _, t := range tickets {
		<-t.Done()
		if _, err := t.Image(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
