package reconfig

import (
	"bytes"
	"testing"

	"liquidarch/internal/leon"
	"liquidarch/internal/synth"
)

var testSynth = synth.Options{BitstreamBytes: 256}

func cfgWithDCache(size int) leon.Config {
	cfg := leon.DefaultConfig()
	cfg.DCache.SizeBytes = size
	return cfg
}

func TestGetOrSynthesizeHitAndMiss(t *testing.T) {
	m := NewManager(NewCache(0), testSynth)
	cfg := leon.DefaultConfig()
	img1, hit, err := m.GetOrSynthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first request hit")
	}
	img2, hit, err := m.GetOrSynthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second request missed")
	}
	if !bytes.Equal(img1.Bitstream, img2.Bitstream) {
		t.Error("cached bitstream differs")
	}
	st := m.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The time economics the cache exists for: a hit saves ≈1 h.
	if st.SavedTime < st.SynthTime/2 {
		t.Errorf("saved %v vs spent %v", st.SavedTime, st.SynthTime)
	}
}

func TestPregenerateThenAllHits(t *testing.T) {
	m := NewManager(NewCache(0), testSynth)
	var cfgs []leon.Config
	for _, size := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		cfgs = append(cfgs, cfgWithDCache(size))
	}
	if err := m.Pregenerate(cfgs); err != nil {
		t.Fatal(err)
	}
	if m.Cache().Len() != 5 {
		t.Fatalf("cache holds %d images", m.Cache().Len())
	}
	for _, cfg := range cfgs {
		if _, hit, err := m.GetOrSynthesize(cfg); err != nil || !hit {
			t.Errorf("pre-generated %d missed (err %v)", cfg.DCache.SizeBytes, err)
		}
	}
	if got := len(m.Cache().Keys()); got != 5 {
		t.Errorf("Keys() = %d", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache(2)
	m := NewManager(c, testSynth)
	a, b, d := cfgWithDCache(1<<10), cfgWithDCache(2<<10), cfgWithDCache(8<<10)
	m.GetOrSynthesize(a)
	m.GetOrSynthesize(b)
	m.GetOrSynthesize(a) // a most recent
	m.GetOrSynthesize(d) // evicts b
	if _, ok := c.Get(synth.ConfigKey(a)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Get(synth.ConfigKey(b)); ok {
		t.Error("LRU entry survived")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestPutReplaces(t *testing.T) {
	c := NewCache(0)
	img, err := synth.Synthesize(leon.DefaultConfig(), testSynth)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(img)
	c.Put(img)
	if c.Len() != 1 {
		t.Errorf("duplicate Put grew the cache to %d", c.Len())
	}
}

func TestSynthesisErrorPropagates(t *testing.T) {
	m := NewManager(NewCache(0), testSynth)
	bad := leon.DefaultConfig()
	bad.DCache.SizeBytes = 512 << 10
	if _, _, err := m.GetOrSynthesize(bad); err == nil {
		t.Error("unfittable config cached")
	}
	if m.Cache().Len() != 0 {
		t.Error("failed synthesis left a cache entry")
	}
	if err := m.Pregenerate([]leon.Config{bad}); err == nil {
		t.Error("Pregenerate swallowed the error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(NewCache(0), testSynth)
	cfgs := []leon.Config{cfgWithDCache(1 << 10), cfgWithDCache(4 << 10)}
	if err := m.Pregenerate(cfgs); err != nil {
		t.Fatal(err)
	}
	if err := m.Cache().Save(dir); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(0)
	if err := fresh.Load(dir); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("loaded %d images", fresh.Len())
	}
	for _, cfg := range cfgs {
		img, ok := fresh.Get(synth.ConfigKey(cfg))
		if !ok {
			t.Fatalf("missing %s", synth.ConfigKey(cfg))
		}
		want, _ := synth.Synthesize(cfg, testSynth)
		if !bytes.Equal(img.Bitstream, want.Bitstream) {
			t.Error("persisted bitstream corrupted")
		}
		if img.Util != want.Util {
			t.Errorf("persisted utilization %+v != %+v", img.Util, want.Util)
		}
	}
	// Loading a directory with no entries is fine.
	if err := NewCache(0).Load(t.TempDir()); err != nil {
		t.Errorf("empty load: %v", err)
	}
}
