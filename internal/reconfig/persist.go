package reconfig

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"time"

	"liquidarch/internal/synth"
)

// The persistent store is content-addressed: every image lives in one
// file named by the FNV-64a hash of its configuration key, written
// atomically (temp file + rename) in a checksummed binary format. A
// restarted server warm-loads the directory and keeps its
// hour-equivalents of synthesis; a corrupt or mismatched file is
// skipped and counted, never fatal.

// imageExt is the store's file extension (liquid image).
const imageExt = ".lqi"

// imageMagic heads every persisted image.
var imageMagic = [4]byte{'L', 'Q', 'I', '1'}

// maxImageField bounds the variable-length fields an untrusted file
// can claim, so a corrupt length prefix cannot force a huge alloc.
const maxImageField = 64 << 20

// imageFileName returns the content-addressed file name for key.
func imageFileName(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x%s", h.Sum64(), imageExt)
}

// encodeImage serializes an image into the persistent format:
//
//	magic "LQI1"
//	u32 len + key
//	u32 len + config JSON
//	u32 slices, u32 brams, u32 iobs, u64 fmax (IEEE-754 bits)
//	u32 len + device name
//	u64 synth time (ns)
//	u32 len + bitstream
//	u64 FNV-64a checksum of everything above
func encodeImage(img *synth.Image) ([]byte, error) {
	cfgJSON, err := json.Marshal(img.Config)
	if err != nil {
		return nil, fmt.Errorf("reconfig: encode %s: %w", img.Key, err)
	}
	n := 4 + 4 + len(img.Key) + 4 + len(cfgJSON) + 4 + 4 + 4 + 8 +
		4 + len(img.Device) + 8 + 4 + len(img.Bitstream) + 8
	out := make([]byte, 0, n)
	out = append(out, imageMagic[:]...)
	out = appendBytes(out, []byte(img.Key))
	out = appendBytes(out, cfgJSON)
	out = binary.BigEndian.AppendUint32(out, uint32(img.Util.Slices))
	out = binary.BigEndian.AppendUint32(out, uint32(img.Util.BlockRAMs))
	out = binary.BigEndian.AppendUint32(out, uint32(img.Util.IOBs))
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(img.Util.FMaxMHz))
	out = appendBytes(out, []byte(img.Device))
	out = binary.BigEndian.AppendUint64(out, uint64(img.SynthTime))
	out = appendBytes(out, img.Bitstream)
	h := fnv.New64a()
	h.Write(out)
	out = binary.BigEndian.AppendUint64(out, h.Sum64())
	return out, nil
}

func appendBytes(out, b []byte) []byte {
	out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
	return append(out, b...)
}

// decodeImage parses and checksums a persisted image. It rejects
// truncated, oversized, or bit-flipped files; it does not check that
// the key matches the config (Load does, with the store's context).
func decodeImage(blob []byte) (*synth.Image, error) {
	if len(blob) < len(imageMagic)+8 {
		return nil, fmt.Errorf("reconfig: image truncated (%d bytes)", len(blob))
	}
	if [4]byte(blob[:4]) != imageMagic {
		return nil, fmt.Errorf("reconfig: bad image magic %q", blob[:4])
	}
	body, sumBytes := blob[:len(blob)-8], blob[len(blob)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := binary.BigEndian.Uint64(sumBytes), h.Sum64(); got != want {
		return nil, fmt.Errorf("reconfig: image checksum mismatch (%016x != %016x)", got, want)
	}
	p := body[4:]
	next := func() ([]byte, error) {
		if len(p) < 4 {
			return nil, fmt.Errorf("reconfig: image field truncated")
		}
		n := binary.BigEndian.Uint32(p)
		p = p[4:]
		if n > maxImageField || int(n) > len(p) {
			return nil, fmt.Errorf("reconfig: image field length %d out of range", n)
		}
		b := p[:n]
		p = p[n:]
		return b, nil
	}
	key, err := next()
	if err != nil {
		return nil, err
	}
	cfgJSON, err := next()
	if err != nil {
		return nil, err
	}
	img := &synth.Image{Key: string(key)}
	if err := json.Unmarshal(cfgJSON, &img.Config); err != nil {
		return nil, fmt.Errorf("reconfig: image config: %w", err)
	}
	if len(p) < 4+4+4+8 {
		return nil, fmt.Errorf("reconfig: image utilization truncated")
	}
	img.Util = synth.Utilization{
		Slices:    int(binary.BigEndian.Uint32(p)),
		BlockRAMs: int(binary.BigEndian.Uint32(p[4:])),
		IOBs:      int(binary.BigEndian.Uint32(p[8:])),
		FMaxMHz:   math.Float64frombits(binary.BigEndian.Uint64(p[12:])),
	}
	p = p[20:]
	dev, err := next()
	if err != nil {
		return nil, err
	}
	img.Device = string(dev)
	if len(p) < 8 {
		return nil, fmt.Errorf("reconfig: image synth time truncated")
	}
	img.SynthTime = time.Duration(binary.BigEndian.Uint64(p))
	p = p[8:]
	bit, err := next()
	if err != nil {
		return nil, err
	}
	img.Bitstream = bit
	if len(p) != 0 {
		return nil, fmt.Errorf("reconfig: %d trailing bytes after image", len(p))
	}
	return img, nil
}

// SetDir points the cache at a persistent store directory: every
// future Put writes through, and entries already cached are flushed so
// the directory immediately reflects the cache.
func (c *Cache) SetDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("reconfig: %w", err)
	}
	c.mu.Lock()
	c.dir = dir
	imgs := make([]*synth.Image, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		imgs = append(imgs, el.Value.(*entry).img)
	}
	c.mu.Unlock()
	for _, img := range imgs {
		c.persist(dir, img)
	}
	return nil
}

// Dir returns the persistent store directory ("" when in-memory only).
func (c *Cache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// persist writes one image into dir atomically (temp file in the same
// directory, then rename). Failures are counted and logged, never
// propagated: the in-memory cache keeps serving.
func (c *Cache) persist(dir string, img *synth.Image) {
	err := writeImageFile(dir, img)
	c.mu.Lock()
	log := c.log
	if err != nil {
		c.stats.PersistErrors++
	} else {
		c.stats.PersistWrites++
	}
	c.mu.Unlock()
	if err != nil {
		log.Warnf("reconfig persist failed", "key", img.Key, "err", err.Error())
	} else {
		log.Debugf("reconfig persisted", "key", img.Key, "file", imageFileName(img.Key))
	}
}

func writeImageFile(dir string, img *synth.Image) error {
	blob, err := encodeImage(img)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".lqi-*")
	if err != nil {
		return fmt.Errorf("reconfig: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("reconfig: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("reconfig: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, imageFileName(img.Key))); err != nil {
		return fmt.Errorf("reconfig: %w", err)
	}
	return nil
}

// Save writes every cached image under dir, one file per entry (the
// same format the write-through store uses).
func (c *Cache) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("reconfig: %w", err)
	}
	c.mu.Lock()
	imgs := make([]*synth.Image, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		imgs = append(imgs, el.Value.(*entry).img)
	}
	c.mu.Unlock()
	for _, img := range imgs {
		if err := writeImageFile(dir, img); err != nil {
			return err
		}
	}
	return nil
}

// Load restores images previously written by Save or the write-through
// store. One corrupt, truncated, or key-mismatched file never aborts
// the warm-load: it is skipped, counted in Stats.PersistSkipped, and
// logged. Only directory-level errors are returned.
func (c *Cache) Load(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*"+imageExt))
	if err != nil {
		return fmt.Errorf("reconfig: %w", err)
	}
	c.mu.Lock()
	log := c.log
	c.mu.Unlock()
	for _, name := range matches {
		img, err := loadImageFile(name)
		if err != nil {
			c.mu.Lock()
			c.stats.PersistSkipped++
			c.mu.Unlock()
			log.Warnf("reconfig store entry skipped", "file", filepath.Base(name), "err", err.Error())
			continue
		}
		c.mu.Lock()
		c.stats.PersistLoaded++
		c.putLocked(img, true)
		c.mu.Unlock()
	}
	return nil
}

// loadImageFile reads and fully validates one store entry: checksummed
// decode, key↔config agreement, and content-addressed name agreement.
func loadImageFile(name string) (*synth.Image, error) {
	blob, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}
	img, err := decodeImage(blob)
	if err != nil {
		return nil, err
	}
	if got := synth.ConfigKey(img.Config); got != img.Key {
		return nil, fmt.Errorf("reconfig: key mismatch: file says %q, config is %q", img.Key, got)
	}
	if want := imageFileName(img.Key); filepath.Base(name) != want {
		return nil, fmt.Errorf("reconfig: misfiled image: %s holds key %q (expect %s)",
			filepath.Base(name), img.Key, want)
	}
	return img, nil
}
