// Package reconfig implements the Reconfiguration Cache of Fig. 1:
// "as features are identified for reconfiguration, instances of those
// features are pre-generated in the user- or application-defined
// parameter space. Each such instance requires ≈1 hour to synthesize,
// and the results are captured in the reconfiguration cache. At
// runtime, an application can switch between these pre-generated
// modules to improve performance."
//
// The cache is an in-memory LRU layered over an optional persistent
// content-addressed store (one checksummed file per image, written
// atomically), and the Manager in front of it is an asynchronous
// synthesis service: a singleflight ticket table coalesces concurrent
// requests for the same configuration onto one in-flight job while a
// bounded worker pool synthesizes distinct configurations in parallel.
package reconfig

import (
	"container/list"
	"sync"
	"time"

	"liquidarch/internal/metrics/eventlog"
	"liquidarch/internal/synth"
)

// Stats counts cache behaviour; the hit ratio is what turns one-hour
// synthesis runs into millisecond reconfigurations.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	SynthTime time.Duration // modelled tool time spent on misses
	SavedTime time.Duration // modelled tool time avoided by hits

	// Persistence counters (all zero when no store directory is set).
	PersistHits    uint64 // hits served by images warm-loaded from disk
	PersistLoaded  uint64 // images restored by Load
	PersistSkipped uint64 // corrupt or mismatched files skipped by Load
	PersistWrites  uint64 // images written through to the store
	PersistErrors  uint64 // write-through failures (cache still serves)
}

// Cache is an LRU store of synthesized configuration images, with an
// optional write-through persistent directory store behind it.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recent
	stats   Stats
	dir     string // "" = in-memory only
	log     *eventlog.Log
}

type entry struct {
	key      string
	img      *synth.Image
	fromDisk bool // warm-loaded from the persistent store
}

// NewCache returns a cache holding at most capacity images (0 means
// unbounded — the paper's cache grows with the parameter space).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// SetLog attaches a structured event log (nil is fine; the cache then
// logs nowhere).
func (c *Cache) SetLog(l *eventlog.Log) {
	c.mu.Lock()
	c.log = l
	c.mu.Unlock()
}

// Len returns the number of cached images.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get returns the image for key, marking it most recently used.
func (c *Cache) Get(key string) (*synth.Image, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.Hits++
	e := el.Value.(*entry)
	if e.fromDisk {
		c.stats.PersistHits++
	}
	c.stats.SavedTime += e.img.SynthTime
	return e.img, true
}

// Put stores an image, evicting the least recently used entry when
// over capacity, and writes it through to the persistent store when
// one is configured.
func (c *Cache) Put(img *synth.Image) {
	c.mu.Lock()
	dir := c.dir
	c.putLocked(img, false)
	c.mu.Unlock()
	if dir != "" {
		c.persist(dir, img)
	}
}

// addSynthesized records a fresh synthesis result: the modelled tool
// time and the image land under one critical section so concurrent
// misses cannot double-count.
func (c *Cache) addSynthesized(img *synth.Image) {
	c.mu.Lock()
	dir := c.dir
	c.stats.SynthTime += img.SynthTime
	c.putLocked(img, false)
	c.mu.Unlock()
	if dir != "" {
		c.persist(dir, img)
	}
}

// putLocked inserts or refreshes an entry; callers hold c.mu.
func (c *Cache) putLocked(img *synth.Image, fromDisk bool) {
	if el, ok := c.entries[img.Key]; ok {
		e := el.Value.(*entry)
		e.img = img
		e.fromDisk = fromDisk
		c.order.MoveToFront(el)
		return
	}
	c.entries[img.Key] = c.order.PushFront(&entry{key: img.Key, img: img, fromDisk: fromDisk})
	if c.cap > 0 && len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Keys returns the cached configuration keys, most recent first.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}
