// Package reconfig implements the Reconfiguration Cache of Fig. 1:
// "as features are identified for reconfiguration, instances of those
// features are pre-generated in the user- or application-defined
// parameter space. Each such instance requires ≈1 hour to synthesize,
// and the results are captured in the reconfiguration cache. At
// runtime, an application can switch between these pre-generated
// modules to improve performance."
package reconfig

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/synth"
)

// Stats counts cache behaviour; the hit ratio is what turns one-hour
// synthesis runs into millisecond reconfigurations.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	SynthTime time.Duration // modelled tool time spent on misses
	SavedTime time.Duration // modelled tool time avoided by hits
}

// Cache is an LRU store of synthesized configuration images.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recent
	stats   Stats
}

type entry struct {
	key string
	img *synth.Image
}

// NewCache returns a cache holding at most capacity images (0 means
// unbounded — the paper's cache grows with the parameter space).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Len returns the number of cached images.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get returns the image for key, marking it most recently used.
func (c *Cache) Get(key string) (*synth.Image, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.Hits++
	img := el.Value.(*entry).img
	c.stats.SavedTime += img.SynthTime
	return img, true
}

// Put stores an image, evicting the least recently used entry when
// over capacity.
func (c *Cache) Put(img *synth.Image) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[img.Key]; ok {
		el.Value.(*entry).img = img
		c.order.MoveToFront(el)
		return
	}
	c.entries[img.Key] = c.order.PushFront(&entry{key: img.Key, img: img})
	if c.cap > 0 && len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Keys returns the cached configuration keys, most recent first.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Manager ties the cache to the synthesis flow: configurations are
// synthesized on first use and served from the cache afterwards.
type Manager struct {
	cache *Cache
	opts  synth.Options
}

// NewManager wraps a cache with synthesis options.
func NewManager(cache *Cache, opts synth.Options) *Manager {
	return &Manager{cache: cache, opts: opts}
}

// Cache returns the underlying cache.
func (m *Manager) Cache() *Cache { return m.cache }

// GetOrSynthesize returns the image for cfg, synthesizing (≈1 modelled
// hour) on a miss.
func (m *Manager) GetOrSynthesize(cfg leon.Config) (*synth.Image, bool, error) {
	key := synth.ConfigKey(cfg)
	if img, ok := m.cache.Get(key); ok {
		return img, true, nil
	}
	img, err := synth.Synthesize(cfg, m.opts)
	if err != nil {
		return nil, false, err
	}
	m.cache.mu.Lock()
	m.cache.stats.SynthTime += img.SynthTime
	m.cache.mu.Unlock()
	m.cache.Put(img)
	return img, false, nil
}

// Pregenerate synthesizes every configuration in the space up front —
// the paper's offline population of the cache.
func (m *Manager) Pregenerate(cfgs []leon.Config) error {
	for _, cfg := range cfgs {
		if _, _, err := m.GetOrSynthesize(cfg); err != nil {
			return err
		}
	}
	return nil
}

// persisted is the on-disk form of one image (bitstream kept verbatim;
// the config is re-validated on load).
type persisted struct {
	Key       string
	Config    leon.Config
	Util      synth.Utilization
	Device    string
	SynthTime time.Duration
	Bitstream []byte
}

// Save writes every cached image under dir, one file per entry.
func (c *Cache) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("reconfig: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		p := persisted{
			Key:       e.key,
			Config:    e.img.Config,
			Util:      e.img.Util,
			Device:    e.img.Device,
			SynthTime: e.img.SynthTime,
			Bitstream: e.img.Bitstream,
		}
		blob, err := json.Marshal(p)
		if err != nil {
			return fmt.Errorf("reconfig: %w", err)
		}
		name := filepath.Join(dir, sanitize(e.key)+".bit.json")
		if err := os.WriteFile(name, blob, 0o644); err != nil {
			return fmt.Errorf("reconfig: %w", err)
		}
	}
	return nil
}

// Load restores images previously written by Save.
func (c *Cache) Load(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*.bit.json"))
	if err != nil {
		return fmt.Errorf("reconfig: %w", err)
	}
	for _, name := range matches {
		blob, err := os.ReadFile(name)
		if err != nil {
			return fmt.Errorf("reconfig: %w", err)
		}
		var p persisted
		if err := json.Unmarshal(blob, &p); err != nil {
			return fmt.Errorf("reconfig: %s: %w", name, err)
		}
		c.Put(&synth.Image{
			Key:       p.Key,
			Config:    p.Config,
			Util:      p.Util,
			Device:    p.Device,
			SynthTime: p.SynthTime,
			Bitstream: p.Bitstream,
		})
	}
	return nil
}

func sanitize(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		case r >= 'A' && r <= 'Z':
			return r
		default:
			return '_'
		}
	}, key)
}
