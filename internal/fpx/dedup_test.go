package fpx

import (
	"bytes"
	"fmt"
	"testing"

	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
)

func TestDedupCacheRememberAndLookup(t *testing.T) {
	d := newDedupCache()
	k := dedupKey{src: "1.2.3.4:5", cmd: netproto.CmdStatus, seq: 9}
	if _, ok := d.lookup(k); ok {
		t.Fatal("empty cache claims a hit")
	}
	resp := []netproto.Packet{{Command: netproto.CmdStatus | netproto.RespFlag}}
	d.remember(k, resp)
	got, ok := d.lookup(k)
	if !ok || len(got) != 1 || got[0].Command != resp[0].Command {
		t.Fatalf("lookup after remember: %v %v", got, ok)
	}
	// Same src, different seq: a different exchange.
	if _, ok := d.lookup(dedupKey{src: "1.2.3.4:5", cmd: netproto.CmdStatus, seq: 10}); ok {
		t.Fatal("different seq hit the cache")
	}
	// Same seq, different src: a different client's exchange.
	if _, ok := d.lookup(dedupKey{src: "9.9.9.9:1", cmd: netproto.CmdStatus, seq: 9}); ok {
		t.Fatal("different source hit the cache")
	}
}

func TestDedupCacheEvictsFIFO(t *testing.T) {
	d := newDedupCache()
	key := func(i int) dedupKey {
		return dedupKey{src: fmt.Sprintf("10.0.0.1:%d", i), cmd: netproto.CmdStatus, seq: uint16(i)}
	}
	for i := 0; i < DedupWindow+1; i++ {
		d.remember(key(i), nil)
	}
	if _, ok := d.lookup(key(0)); ok {
		t.Error("oldest exchange survived a full window of newer ones")
	}
	if _, ok := d.lookup(key(1)); !ok {
		t.Error("second-oldest exchange evicted too early")
	}
	if _, ok := d.lookup(key(DedupWindow)); !ok {
		t.Error("newest exchange missing")
	}
	if len(d.m) != DedupWindow {
		t.Errorf("cache holds %d exchanges, want %d", len(d.m), DedupWindow)
	}
}

func TestDedupCacheUpdateInPlace(t *testing.T) {
	d := newDedupCache()
	k := dedupKey{src: "a", cmd: 1, seq: 1}
	d.remember(k, []netproto.Packet{{Command: 1}})
	d.remember(k, []netproto.Packet{{Command: 2}})
	got, ok := d.lookup(k)
	if !ok || got[0].Command != 2 {
		t.Fatalf("update in place: %v %v", got, ok)
	}
	if len(d.m) != 1 {
		t.Errorf("re-remember grew the cache to %d entries", len(d.m))
	}
}

// TestRetransmitAnsweredFromCache: a v3 exchange handled twice from
// the same source is answered from the dedup window the second time —
// identical responses, no second dispatch.
func TestRetransmitAnsweredFromCache(t *testing.T) {
	p := New(NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	req := netproto.Packet{Command: netproto.CmdStatus, Seq: 5, HasSeq: true}.Marshal()

	first := p.HandlePayloadFrom("1.2.3.4:100", req)
	second := p.HandlePayloadFrom("1.2.3.4:100", req)
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("responses: %d / %d", len(first), len(second))
	}
	if !bytes.Equal(first[0].Marshal(), second[0].Marshal()) {
		t.Error("retransmission drew a different response than the original")
	}
	if !second[0].HasSeq || second[0].Seq != 5 {
		t.Errorf("response does not echo the exchange seq: %+v", second[0])
	}
	snap := p.Metrics().Snapshot()
	if got := snap.Counters["liquid_fpx_dup_requests_total"]; got != 1 {
		t.Errorf("dedup re-acks = %d, want 1", got)
	}

	// The same seq from a DIFFERENT source is a fresh exchange.
	p.HandlePayloadFrom("5.6.7.8:100", req)
	snap = p.Metrics().Snapshot()
	if got := snap.Counters["liquid_fpx_dup_requests_total"]; got != 1 {
		t.Errorf("other-source request hit the dedup window (re-acks = %d)", got)
	}
}

// countingCtrl counts Execute calls so a test can prove a duplicated
// start never re-runs the program.
type countingCtrl struct {
	*Emulator
	executes int
}

func (c *countingCtrl) Execute(entry uint32, maxCycles uint64) (leon.RunResult, error) {
	c.executes++
	return c.Emulator.Execute(entry, maxCycles)
}

// TestRetransmittedWriteNotReapplied: the dedup window makes mutating
// commands idempotent — here a duplicated start does not re-run the
// program.
func TestRetransmittedWriteNotReapplied(t *testing.T) {
	em := &countingCtrl{Emulator: NewEmulator()}
	p := New(em, [4]byte{10, 0, 0, 2}, 5001)
	// Load a one-chunk image so start has something to run.
	chunk := netproto.ChunkImage(leon.DefaultLoadAddr, bytes.Repeat([]byte{1}, 64))[0]
	load := netproto.Packet{Command: netproto.CmdLoadProgram, Seq: 1, HasSeq: true, Body: chunk.Marshal()}.Marshal()
	if resps := p.HandlePayloadFrom("src:1", load); len(resps) != 1 {
		t.Fatalf("load responses: %d", len(resps))
	}
	start := netproto.Packet{Command: netproto.CmdStartSync, Seq: 2, HasSeq: true,
		Body: netproto.StartReq{Entry: leon.DefaultLoadAddr}.Marshal()}.Marshal()
	r1 := p.HandlePayloadFrom("src:1", start)
	runs := em.executes
	r2 := p.HandlePayloadFrom("src:1", start) // retransmission
	if em.executes != runs {
		t.Errorf("retransmitted start re-ran the program (%d → %d executes)", runs, em.executes)
	}
	if !bytes.Equal(r1[0].Marshal(), r2[0].Marshal()) {
		t.Error("retransmitted start drew a different report")
	}
}

func TestV1RequestsBypassDedup(t *testing.T) {
	p := New(NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	req := netproto.Packet{Command: netproto.CmdStatus}.Marshal() // v1: no seq
	p.HandlePayloadFrom("1.2.3.4:100", req)
	p.HandlePayloadFrom("1.2.3.4:100", req)
	snap := p.Metrics().Snapshot()
	if got := snap.Counters["liquid_fpx_dup_requests_total"]; got != 0 {
		t.Errorf("v1 requests hit the dedup window (%d re-acks)", got)
	}
	// Responses to v1 requests stay v1-shaped.
	resps := p.HandlePayload(req)
	if len(resps) != 1 || resps[0].HasSeq {
		t.Errorf("v1 request drew a v3 response: %+v", resps)
	}
}

// TestDuplicateChunkReackedWithProgress: a re-sent load chunk is acked
// with the reassembly progress but never copied again.
func TestDuplicateChunkReackedWithProgress(t *testing.T) {
	p := New(NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	img := bytes.Repeat([]byte{7}, netproto.MaxChunkData+10) // 2 chunks
	chunks := netproto.ChunkImage(leon.DefaultLoadAddr, img)

	send := func(seq uint16, c netproto.LoadChunk) netproto.RunReport {
		t.Helper()
		raw := netproto.Packet{Command: netproto.CmdLoadProgram, Seq: seq, HasSeq: true, Body: c.Marshal()}.Marshal()
		resps := p.HandlePayloadFrom("src:1", raw)
		if len(resps) != 1 {
			t.Fatalf("chunk %d: %d responses", c.Seq, len(resps))
		}
		rep, err := netproto.ParseRunReport(resps[0].Body)
		if err != nil {
			t.Fatalf("chunk %d ack: %v", c.Seq, err)
		}
		return rep
	}

	rep := send(1, chunks[0])
	if rep.Status != netproto.StatusPending {
		t.Fatalf("first chunk status %d", rep.Status)
	}
	if recv, next := netproto.LoadAckProgress(rep); recv != 1 || next != 1 {
		t.Fatalf("first chunk progress (%d,%d), want (1,1)", recv, next)
	}

	// Re-send chunk 0 as a NEW exchange (seq 2): this models a client
	// resuming an interrupted load, not a retransmission, so it gets
	// past the dedup window and must be re-acked with progress.
	rep = send(2, chunks[0])
	if rep.Status != netproto.StatusPending {
		t.Fatalf("dup chunk status %d", rep.Status)
	}
	if recv, next := netproto.LoadAckProgress(rep); recv != 1 || next != 1 {
		t.Fatalf("dup chunk progress (%d,%d), want (1,1)", recv, next)
	}

	rep = send(3, chunks[1])
	if rep.Status != netproto.StatusOK {
		t.Fatalf("final chunk status %d", rep.Status)
	}
	if recv, next := netproto.LoadAckProgress(rep); recv != 2 || next != 2 {
		t.Fatalf("final progress (%d,%d), want (2,2)", recv, next)
	}

	snap := p.Metrics().Snapshot()
	if got := snap.Counters["liquid_fpx_load_chunks_applied_total"]; got != 2 {
		t.Errorf("chunks applied = %d, want 2 (dup never re-applied)", got)
	}
	if got := snap.Counters["liquid_fpx_load_chunks_dup_total"]; got != 1 {
		t.Errorf("dup chunks = %d, want 1", got)
	}
}

func TestSetControlResetsDedup(t *testing.T) {
	p := New(NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	req := netproto.Packet{Command: netproto.CmdStatus, Seq: 1, HasSeq: true}.Marshal()
	p.HandlePayloadFrom("a:1", req)
	p.SetControl(NewEmulator())
	p.HandlePayloadFrom("a:1", req)
	snap := p.Metrics().Snapshot()
	if got := snap.Counters["liquid_fpx_dup_requests_total"]; got != 0 {
		t.Errorf("dedup window survived SetControl (%d re-acks)", got)
	}
}
