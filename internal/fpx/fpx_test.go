package fpx

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
)

var (
	fpxIP    = [4]byte{10, 0, 0, 2}
	hostIP   = [4]byte{10, 0, 0, 1}
	fpxPort  = uint16(5001)
	hostPort = uint16(41000)
)

// newLEONPlatform builds a platform over a real booted LEON system,
// wrapped in the per-board actor so async starts self-drive.
func newLEONPlatform(t *testing.T) *Platform {
	t.Helper()
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	a := leon.NewAsyncController(ctrl)
	t.Cleanup(a.Close)
	return New(a, fpxIP, fpxPort)
}

// sendCmd wraps a packet in a frame, runs the hardware path, and
// returns the parsed response packets.
func sendCmd(t *testing.T, p *Platform, pkt netproto.Packet) []netproto.Packet {
	t.Helper()
	frame := netproto.BuildFrame(hostIP, fpxIP, hostPort, fpxPort, pkt.Marshal())
	outs, err := p.HandleFrame(frame)
	if err != nil {
		t.Fatalf("HandleFrame: %v", err)
	}
	resps := make([]netproto.Packet, len(outs))
	for i, raw := range outs {
		f, err := netproto.ParseFrame(raw)
		if err != nil {
			t.Fatalf("response frame: %v", err)
		}
		if f.IP.Dst != hostIP || f.UDP.DstPort != hostPort {
			t.Fatalf("response misaddressed: %v:%d", f.IP.Dst, f.UDP.DstPort)
		}
		rp, err := netproto.ParsePacket(f.Payload)
		if err != nil {
			t.Fatalf("response payload: %v", err)
		}
		resps[i] = rp
	}
	return resps
}

// testProgram stores 0xBEEF at its result word and returns.
func testProgram(t *testing.T) *asm.Object {
	t.Helper()
	obj, err := asm.AssembleAt(`
_start:
	set 0xBEEF, %o0
	set result, %g1
	st %o0, [%g1]
	set 0x1000, %g7
	jmp %g7
	nop
result:	.word 0
`, leon.DefaultLoadAddr)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestFullRemoteSession(t *testing.T) {
	p := newLEONPlatform(t)
	obj := testProgram(t)

	// 1. Status: idle.
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStatus})
	if len(resps) != 1 {
		t.Fatalf("%d status responses", len(resps))
	}
	st, err := netproto.ParseStatusResp(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if leon.State(st.State) != leon.StateIdle || !st.BootOK {
		t.Errorf("status = %+v", st)
	}

	// 2. Load the program in one chunk.
	chunks := netproto.ChunkImage(obj.Origin, obj.Code)
	for _, c := range chunks {
		resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdLoadProgram, Body: c.Marshal()})
		rep, err := netproto.ParseRunReport(resps[0].Body)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != netproto.StatusOK && rep.Status != netproto.StatusPending {
			t.Fatalf("load status %d", rep.Status)
		}
	}

	// 3. Start (entry 0 = last load address): the §3.1 handoff acks
	// immediately with "running"...
	done := make(chan struct{})
	if !p.SetRunDoneHook(func() { close(done) }) {
		t.Fatal("controller does not support the run-done hook")
	}
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdStartLEON, Body: netproto.StartReq{}.Marshal()})
	rep, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusRunning {
		t.Fatalf("start ack %+v, want running", rep)
	}
	// ...completion is signaled by the run-done hook (no sleep
	// polling) and confirmed with one CmdStatus exchange...
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run never completed")
	}
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdStatus})
	st, err = netproto.ParseStatusResp(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if leon.State(st.State) == leon.StateRunning {
		t.Fatal("status still running after the run-done hook fired")
	}
	// ...and the final report is collected with CmdResult.
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdResult})
	rep, err = netproto.ParseRunReport(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK || rep.Cycles == 0 {
		t.Fatalf("run report %+v", rep)
	}

	// 4. Read back the result.
	addr, _ := obj.Symbol("result")
	req := netproto.MemReq{Addr: addr, Length: 4}
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdReadMemory, Body: req.Marshal()})
	mr, err := netproto.ParseMemResp(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint32(mr.Data[0])<<24 | uint32(mr.Data[1])<<16 | uint32(mr.Data[2])<<8 | uint32(mr.Data[3]); got != 0xBEEF {
		t.Errorf("result = %#x", got)
	}
	if p.Stats().LoadsCompleted != 1 || p.Stats().CommandsHandled < 4 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

// TestStartSyncCompat locks the blocking compatibility path: one
// CmdStartSync round trip answers with the final RunReport, exactly as
// the pre-async CmdStartLEON did.
func TestStartSyncCompat(t *testing.T) {
	p := newLEONPlatform(t)
	obj := testProgram(t)
	for _, c := range netproto.ChunkImage(obj.Origin, obj.Code) {
		sendCmd(t, p, netproto.Packet{Command: netproto.CmdLoadProgram, Body: c.Marshal()})
	}
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStartSync, Body: netproto.StartReq{}.Marshal()})
	rep, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK || rep.Cycles == 0 {
		t.Fatalf("startsync report %+v", rep)
	}
	// Result afterwards is idempotent and matches.
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdResult})
	rep2, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil || rep2 != rep {
		t.Errorf("result after startsync = %+v, %v (want %+v)", rep2, err, rep)
	}
	// StartSync without a load errors with its own code.
	p2 := newLEONPlatform(t)
	resps = sendCmd(t, p2, netproto.Packet{Command: netproto.CmdStartSync, Body: netproto.StartReq{}.Marshal()})
	er, err := netproto.ParseErrorResp(resps[0].Body)
	if err != nil || er.Code != netproto.CmdStartSync {
		t.Errorf("startsync no-load error = %+v, %v", er, err)
	}
}

// TestMultiPacketLoadOutOfOrder delivers a multi-chunk load shuffled
// and with duplicates, as UDP may: reassembly must still be exact.
func TestMultiPacketLoadOutOfOrder(t *testing.T) {
	p := newLEONPlatform(t)
	// Build a big image: program + large data tail.
	image := make([]byte, 5*netproto.MaxChunkData+123)
	obj := testProgram(t)
	copy(image, obj.Code)
	for i := len(obj.Code); i < len(image); i++ {
		image[i] = byte(i * 7)
	}
	chunks := netproto.ChunkImage(leon.DefaultLoadAddr, image)
	rng := rand.New(rand.NewSource(42))
	order := rng.Perm(len(chunks))
	// Duplicate a couple of chunks.
	order = append(order, order[0], order[len(order)/2])

	var lastStatus uint8
	for _, idx := range order {
		resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdLoadProgram, Body: chunks[idx].Marshal()})
		rep, err := netproto.ParseRunReport(resps[0].Body)
		if err != nil {
			// Post-completion duplicates restart reassembly and
			// report pending; both are acceptable.
			continue
		}
		lastStatus = rep.Status
	}
	_ = lastStatus
	// Verify memory contents via read-back.
	req := netproto.MemReq{Addr: leon.DefaultLoadAddr, Length: uint32(len(image))}
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdReadMemory, Body: req.Marshal()})
	mr, err := netproto.ParseMemResp(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mr.Data, image) {
		t.Error("reassembled image differs from original")
	}
}

func TestNonLiquidTrafficPassesThrough(t *testing.T) {
	p := newLEONPlatform(t)
	// Wrong port.
	frame := netproto.BuildFrame(hostIP, fpxIP, hostPort, fpxPort+1, netproto.Packet{Command: netproto.CmdStatus}.Marshal())
	outs, err := p.HandleFrame(frame)
	if err != nil || len(outs) != 0 {
		t.Errorf("wrong-port frame: %d responses, %v", len(outs), err)
	}
	// Right port, not a Liquid payload.
	frame = netproto.BuildFrame(hostIP, fpxIP, hostPort, fpxPort, []byte("GET /"))
	outs, err = p.HandleFrame(frame)
	if err != nil || len(outs) != 0 {
		t.Errorf("non-liquid frame: %d responses, %v", len(outs), err)
	}
	if p.Stats().PassedThrough != 2 {
		t.Errorf("PassedThrough = %d", p.Stats().PassedThrough)
	}
	// Corrupt frame is counted and reported.
	if _, err := p.HandleFrame([]byte{1, 2, 3}); err == nil {
		t.Error("garbage frame accepted")
	}
	if p.Stats().BadFrames != 1 {
		t.Errorf("BadFrames = %d", p.Stats().BadFrames)
	}
}

func TestStartWithoutLoadFails(t *testing.T) {
	p := newLEONPlatform(t)
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStartLEON, Body: netproto.StartReq{}.Marshal()})
	if resps[0].Command != netproto.CmdError {
		t.Fatalf("response command %#x, want CmdError", resps[0].Command)
	}
	er, err := netproto.ParseErrorResp(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if er.Code != netproto.CmdStartLEON {
		t.Errorf("error resp = %+v", er)
	}
}

func TestFaultingProgramReportsStatusFault(t *testing.T) {
	p := newLEONPlatform(t)
	obj, err := asm.AssembleAt("_start:\n\tunimp 0\n\tnop\n", leon.DefaultLoadAddr)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range netproto.ChunkImage(obj.Origin, obj.Code) {
		sendCmd(t, p, netproto.Packet{Command: netproto.CmdLoadProgram, Body: c.Marshal()})
	}
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStartSync, Body: netproto.StartReq{}.Marshal()})
	rep, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusFault || rep.TT != 0x02 {
		t.Errorf("report = %+v, want fault tt=2", rep)
	}
	// The async path reports the same fault via CmdResult.
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdResult})
	rep2, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil || rep2.Status != netproto.StatusFault || rep2.TT != 0x02 {
		t.Errorf("result report = %+v, %v, want fault tt=2", rep2, err)
	}
}

func TestWriteMemoryCommand(t *testing.T) {
	p := newLEONPlatform(t)
	req := netproto.MemReq{Addr: leon.DefaultLoadAddr + 64, Data: []byte{1, 2, 3, 4}}
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdWriteMemory, Body: req.Marshal()})
	if _, err := netproto.ParseMemResp(resps[0].Body); err != nil {
		t.Fatal(err)
	}
	rreq := netproto.MemReq{Addr: leon.DefaultLoadAddr + 64, Length: 4}
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdReadMemory, Body: rreq.Marshal()})
	mr, _ := netproto.ParseMemResp(resps[0].Body)
	if !bytes.Equal(mr.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("read back % x", mr.Data)
	}
}

func TestReadLengthCap(t *testing.T) {
	p := newLEONPlatform(t)
	req := netproto.MemReq{Addr: leon.SRAMBase, Length: MaxReadLength + 1}
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdReadMemory, Body: req.Marshal()})
	if _, err := netproto.ParseErrorResp(resps[0].Body); err != nil {
		t.Error("oversized read not rejected")
	}
}

func TestUnknownCommand(t *testing.T) {
	p := newLEONPlatform(t)
	resps := sendCmd(t, p, netproto.Packet{Command: 0x7F})
	if resps[0].Command != netproto.CmdError {
		t.Errorf("response command %#x", resps[0].Command)
	}
}

func TestReconfigureUnwired(t *testing.T) {
	p := newLEONPlatform(t)
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdReconfigure})
	if _, err := netproto.ParseErrorResp(resps[0].Body); err != nil {
		t.Error("unwired reconfigure did not error")
	}
	// Wired: succeeds and clears loaded address.
	called := false
	p.ReconfigureFn = func(spec []byte) error { called = true; return nil }
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdReconfigure, Body: []byte("{}")})
	rep, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil || rep.Status != netproto.StatusOK {
		t.Errorf("reconfigure resp %+v, %v", rep, err)
	}
	if !called {
		t.Error("ReconfigureFn not invoked")
	}
}

func TestEmulatorBehavesLikeHardware(t *testing.T) {
	em := NewEmulator()
	p := New(em, fpxIP, fpxPort)
	obj := testProgram(t)
	for _, c := range netproto.ChunkImage(obj.Origin, obj.Code) {
		sendCmd(t, p, netproto.Packet{Command: netproto.CmdLoadProgram, Body: c.Marshal()})
	}
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStartLEON, Body: netproto.StartReq{}.Marshal()})
	rep, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil || rep.Status != netproto.StatusRunning {
		t.Errorf("emulator start ack: %+v, %v", rep, err)
	}
	// The emulator's pretend run settles by the first observation.
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdResult})
	rep, err = netproto.ParseRunReport(resps[0].Body)
	if err != nil || rep.Status != netproto.StatusOK || rep.Cycles == 0 {
		t.Errorf("emulator run: %+v, %v", rep, err)
	}
	// Memory readback returns the loaded bytes (the emulator does not
	// execute, so the result word stays zero — that is the expected
	// fidelity gap the real hardware closed).
	req := netproto.MemReq{Addr: obj.Origin, Length: 8}
	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdReadMemory, Body: req.Marshal()})
	mr, _ := netproto.ParseMemResp(resps[0].Body)
	if !bytes.Equal(mr.Data, obj.Code[:8]) {
		t.Error("emulator memory readback differs")
	}
}

func TestEmulatorValidation(t *testing.T) {
	em := NewEmulator()
	if err := em.LoadProgram(leon.SRAMBase, []byte{1}); err == nil {
		t.Error("mailbox load accepted")
	}
	if _, err := em.Execute(leon.DefaultLoadAddr, 0); err == nil {
		t.Error("execute without load accepted")
	}
	em.LoadProgram(leon.DefaultLoadAddr, make([]byte, 64))
	if _, err := em.Execute(leon.DefaultLoadAddr+1024, 0); err == nil {
		t.Error("entry outside image accepted")
	}
	// Budget exceeded → fault.
	res, err := em.Execute(leon.DefaultLoadAddr, 1)
	if err != nil || !res.Faulted {
		t.Errorf("budget run: %+v, %v", res, err)
	}
	if em.State() != leon.StateFault {
		t.Errorf("state = %v", em.State())
	}
}
