package fpx

import (
	"testing"

	"liquidarch/internal/netproto"
)

func TestSwitchRoutesByDestination(t *testing.T) {
	sw := NewSwitch()
	emA := NewEmulator()
	emB := NewEmulator()
	nodeA := New(emA, [4]byte{10, 0, 0, 2}, 5001)
	nodeB := New(emB, [4]byte{10, 0, 0, 3}, 5001)
	if err := sw.Attach(nodeA); err != nil {
		t.Fatal(err)
	}
	if err := sw.Attach(nodeB); err != nil {
		t.Fatal(err)
	}

	status := netproto.Packet{Command: netproto.CmdStatus}.Marshal()
	// A frame for node B lands on node B.
	frame := netproto.BuildFrame(hostIP, [4]byte{10, 0, 0, 3}, hostPort, 5001, status)
	resps, forwarded, err := sw.Route(frame)
	if err != nil || forwarded {
		t.Fatalf("route: %v forwarded=%v", err, forwarded)
	}
	if len(resps) != 1 {
		t.Fatalf("%d responses", len(resps))
	}
	if nodeB.Stats().CommandsHandled != 1 || nodeA.Stats().CommandsHandled != 0 {
		t.Errorf("command landed on the wrong node: A=%d B=%d",
			nodeA.Stats().CommandsHandled, nodeB.Stats().CommandsHandled)
	}
	// The response frame is addressed back to the sender.
	f, err := netproto.ParseFrame(resps[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.IP.Src != nodeB.IP || f.IP.Dst != hostIP {
		t.Errorf("response addressing %v → %v", f.IP.Src, f.IP.Dst)
	}

	// Unknown destination: forwarded toward the line card.
	other := netproto.BuildFrame(hostIP, [4]byte{10, 0, 0, 99}, hostPort, 5001, status)
	resps, forwarded, err = sw.Route(other)
	if err != nil || !forwarded || len(resps) != 0 {
		t.Errorf("foreign frame: %v forwarded=%v resps=%d", err, forwarded, len(resps))
	}

	// Garbage is counted and reported.
	if _, _, err := sw.Route([]byte{1, 2, 3}); err == nil {
		t.Error("garbage routed")
	}
	st := sw.Stats()
	if st.Delivered != 1 || st.Forwarded != 1 || st.Bad != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSwitchPortLimitAndDuplicates(t *testing.T) {
	sw := NewSwitch()
	for i := 0; i < NIDPorts; i++ {
		p := New(NewEmulator(), [4]byte{10, 0, 0, byte(10 + i)}, 5001)
		if err := sw.Attach(p); err != nil {
			t.Fatalf("port %d: %v", i, err)
		}
	}
	if err := sw.Attach(New(NewEmulator(), [4]byte{10, 0, 0, 50}, 5001)); err == nil {
		t.Error("fifth port attached")
	}
	sw2 := NewSwitch()
	p := New(NewEmulator(), [4]byte{10, 0, 0, 7}, 5001)
	if err := sw2.Attach(p); err != nil {
		t.Fatal(err)
	}
	if err := sw2.Attach(New(NewEmulator(), [4]byte{10, 0, 0, 7}, 5001)); err == nil {
		t.Error("duplicate IP attached")
	}
}
