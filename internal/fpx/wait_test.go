package fpx

import (
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
)

// spinProgram burns ~3M cycles before returning — long enough for the
// direct-path CmdWaitResult below (sent microseconds after the start
// ack) to observe the run in flight, short enough to finish promptly
// under the race detector.
func spinProgram(t *testing.T) *asm.Object {
	t.Helper()
	obj, err := asm.AssembleAt(`
_start:
	set 500000, %g2
loop:
	subcc %g2, 1, %g2
	bne loop
	nop
	set 0x1000, %g7
	jmp %g7
	nop
`, leon.DefaultLoadAddr)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// loadVia pushes a full image through the hardware path chunk by
// chunk.
func loadVia(t *testing.T, p *Platform, obj *asm.Object) {
	t.Helper()
	for _, ch := range netproto.ChunkImage(obj.Origin, obj.Code) {
		resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdLoadProgram, Body: ch.Marshal()})
		rep, err := netproto.ParseRunReport(resps[0].Body)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != netproto.StatusOK && rep.Status != netproto.StatusPending {
			t.Fatalf("load ack status %d", rep.Status)
		}
	}
}

// TestWaitResultCommand: on the direct hardware path (no server in
// front, so nothing can park the exchange) CmdWaitResult degrades to
// exactly CmdResult semantics — "running" while the run is in flight,
// and a final report identical to CmdResult's once it completes.
func TestWaitResultCommand(t *testing.T) {
	p := newLEONPlatform(t)
	obj := spinProgram(t)
	loadVia(t, p, obj)

	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStartLEON, Body: netproto.StartReq{}.Marshal()})
	rep, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusRunning {
		t.Fatalf("start ack %+v, want running", rep)
	}

	// Mid-run, the wait answers "running" like a result poll would.
	resps = sendCmd(t, p, netproto.Packet{
		Command: netproto.CmdWaitResult,
		Body:    netproto.WaitResultReq{HoldMs: 500}.Marshal(),
	})
	rep, err = netproto.ParseRunReport(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusRunning {
		t.Fatalf("mid-run wait = %+v, want running", rep)
	}
	if resps[0].Command != netproto.CmdWaitResult|netproto.RespFlag {
		t.Fatalf("wait answered with command %#x", resps[0].Command)
	}

	// Completion is signaled through the run-done hook, not discovered
	// by sleep-polling. The hook is armed mid-run; if the run already
	// finished by the time we look, the state check skips the wait.
	done := make(chan struct{})
	if !p.SetRunDoneHook(func() { close(done) }) {
		t.Fatal("controller does not support the run-done hook")
	}
	if p.Control().State() == leon.StateRunning {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("run never completed")
		}
	}

	waitResps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdWaitResult, Body: netproto.WaitResultReq{HoldMs: 500}.Marshal()})
	resResps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdResult})
	waitRep, err := netproto.ParseRunReport(waitResps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	resRep, err := netproto.ParseRunReport(resResps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if waitRep != resRep {
		t.Errorf("wait report %+v != result report %+v", waitRep, resRep)
	}
	if waitRep.Status != netproto.StatusOK || waitRep.Cycles == 0 {
		t.Errorf("final wait report %+v", waitRep)
	}
}

// TestRunDoneHookPlumbing: the platform exposes the controller's
// completion hook when (and only when) the controller supports it, and
// keeps it installed across a SetControl board swap.
func TestRunDoneHookPlumbing(t *testing.T) {
	// The emulator completes pretend runs on its pacing clock, so it
	// supports the hook too (simulated nodes park waits against it).
	emu := NewEmulator()
	emuFired := 0
	if ok := New(emu, fpxIP, fpxPort).SetRunDoneHook(func() { emuFired++ }); !ok {
		t.Error("emulator platform rejected the run-done hook")
	}
	if err := emu.LoadProgram(leon.MailboxEnd, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := emu.Execute(leon.MailboxEnd, 0); err != nil {
		t.Fatal(err)
	}
	if emuFired != 1 {
		t.Errorf("emulator run-done hook fired %d times, want 1", emuFired)
	}

	p := newLEONPlatform(t)
	fired := make(chan struct{}, 4)
	if ok := p.SetRunDoneHook(func() { fired <- struct{}{} }); !ok {
		t.Fatal("async-controller platform rejected the run-done hook")
	}

	// Swap in a rebuilt board: the hook must survive the swap.
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	swapped := leon.NewAsyncController(ctrl)
	t.Cleanup(swapped.Close)
	p.SetControl(swapped)

	obj := testProgram(t)
	loadVia(t, p, obj)
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStartLEON, Body: netproto.StartReq{}.Marshal()})
	if rep, err := netproto.ParseRunReport(resps[0].Body); err != nil || rep.Status != netproto.StatusRunning {
		t.Fatalf("start ack %+v, %v", resps[0], err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("run-done hook never fired after SetControl swap")
	}
}
