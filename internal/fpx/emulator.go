package fpx

import (
	"fmt"
	"sync"
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/sim"
)

// Emulator stands in for the FPX hardware, playing the role of the
// paper's "Java Emulator of the H/W (for debugging)" (Fig. 4): it
// accepts loads, pretends to execute programs in a fixed number of
// cycles, and serves memory from a plain byte array. Control-software
// tests run against it without building a processor. It implements
// the asynchronous LEONControl shape: Start arms a pretend run that
// stays Running for AsyncDelay of wall time before any observation
// (State, Cycles, CollectResult) finalizes it. All methods are
// safe for concurrent use.
type Emulator struct {
	mu         sync.Mutex
	mem        map[uint32]byte
	state      leon.State
	last       leon.RunResult
	loaded     uint32
	loadedSize int

	// pending is the armed run; it finalizes lazily when observed
	// after its deadline (or eagerly by CollectResult), and eagerly
	// when the completion timer fires so run-done hooks work.
	pending  *leon.RunResult
	deadline time.Time
	runDone  func()

	// CyclesPerByte sets the pretend execution cost (default 10).
	CyclesPerByte uint64
	// AsyncDelay is how long a started run stays observably Running
	// before it completes (default 0: the run finishes by the first
	// status check — the emulator is infinitely fast hardware).
	AsyncDelay time.Duration
	// Clock paces AsyncDelay (nil = real time). Simulated nodes set
	// the virtual clock so pretend runs complete on the virtual
	// timeline.
	Clock sim.Clock
}

// NewEmulator returns a booted emulator.
func NewEmulator() *Emulator {
	return &Emulator{mem: make(map[uint32]byte), state: leon.StateIdle, CyclesPerByte: 10}
}

// clock returns the configured pacing clock. Callers hold e.mu.
func (e *Emulator) clock() sim.Clock { return sim.Or(e.Clock) }

// settle finalizes the pending run if its deadline has passed,
// reporting whether a run just completed. Callers hold e.mu; the
// run-done hook (non-blocking by contract) fires under the lock.
func (e *Emulator) settle(force bool) bool {
	if e.pending == nil {
		return false
	}
	if !force && e.clock().Now().Before(e.deadline) {
		return false
	}
	e.last = *e.pending
	if e.last.Faulted {
		e.state = leon.StateFault
	} else {
		e.state = leon.StateDone
	}
	e.pending = nil
	if e.runDone != nil {
		e.runDone()
	}
	return true
}

// SetRunDoneHook registers fn to fire every time a pretend run
// completes (nil clears it). fn must not block. With the hook armed
// and AsyncDelay > 0, completion is driven by a clock timer, so
// server-held waits wake without an observation forcing settlement.
func (e *Emulator) SetRunDoneHook(fn func()) {
	e.mu.Lock()
	e.runDone = fn
	e.mu.Unlock()
}

// State implements LEONControl.
func (e *Emulator) State() leon.State {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.settle(false)
	return e.state
}

// Cycles implements LEONControl: the pretend cycle counter of the
// in-flight (or last) run.
func (e *Emulator) Cycles() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.settle(false)
	if e.pending != nil {
		return e.pending.Cycles
	}
	return e.last.Cycles
}

// LastResult implements LEONControl.
func (e *Emulator) LastResult() leon.RunResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.settle(false)
	return e.last
}

// LoadProgram implements LEONControl.
func (e *Emulator) LoadProgram(addr uint32, image []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if addr < leon.MailboxEnd {
		return fmt.Errorf("fpx: emulator: load address %#x overlaps the mailbox", addr)
	}
	for i, b := range image {
		e.mem[addr+uint32(i)] = b
	}
	e.loaded = addr
	e.loadedSize = len(image)
	return nil
}

// Start implements LEONControl: the §3.1 handoff ack. The run charges
// a deterministic cycle count proportional to the image size and
// completes AsyncDelay later.
func (e *Emulator) Start(entry uint32, maxCycles uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.loaded == 0 {
		return fmt.Errorf("fpx: emulator: nothing loaded")
	}
	if entry < e.loaded || entry >= e.loaded+uint32(e.loadedSize) {
		return fmt.Errorf("fpx: emulator: entry %#x outside loaded image", entry)
	}
	res := leon.RunResult{
		Cycles:       uint64(e.loadedSize) * e.CyclesPerByte,
		Instructions: uint64(e.loadedSize / 4),
	}
	if maxCycles != 0 && res.Cycles > maxCycles {
		res.Faulted = true
		res.Cycles = maxCycles
	}
	e.state = leon.StateRunning
	e.pending = &res
	e.deadline = e.clock().Now().Add(e.AsyncDelay)
	if e.AsyncDelay > 0 {
		// Complete on the timeline, not just on observation: a stale
		// timer from an earlier run is harmless (settle(false) no-ops
		// while the newer run's deadline is still ahead).
		e.clock().AfterFunc(e.AsyncDelay, func() {
			e.mu.Lock()
			e.settle(false)
			e.mu.Unlock()
		})
	}
	return nil
}

// CollectResult implements LEONControl: it blocks (conceptually)
// until the run completes — the emulator just completes it.
func (e *Emulator) CollectResult() (leon.RunResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.settle(true)
	return e.last, nil
}

// Execute implements LEONControl: the blocking path, identical in
// observable behavior to the historical emulator (budget overruns
// report a faulted result with a nil error).
func (e *Emulator) Execute(entry uint32, maxCycles uint64) (leon.RunResult, error) {
	if err := e.Start(entry, maxCycles); err != nil {
		return leon.RunResult{}, err
	}
	return e.CollectResult()
}

// ReadMemory implements LEONControl.
func (e *Emulator) ReadMemory(addr uint32, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("fpx: emulator: negative length")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]byte, n)
	for i := range out {
		out[i] = e.mem[addr+uint32(i)]
	}
	return out, nil
}

// WriteMemory implements LEONControl.
func (e *Emulator) WriteMemory(addr uint32, p []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, b := range p {
		e.mem[addr+uint32(i)] = b
	}
	return nil
}
