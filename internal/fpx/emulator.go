package fpx

import (
	"fmt"

	"liquidarch/internal/leon"
)

// Emulator stands in for the FPX hardware, playing the role of the
// paper's "Java Emulator of the H/W (for debugging)" (Fig. 4): it
// accepts loads, pretends to execute programs in a fixed number of
// cycles, and serves memory from a plain byte array. Control-software
// tests run against it without building a processor.
type Emulator struct {
	mem        map[uint32]byte
	state      leon.State
	last       leon.RunResult
	loaded     uint32
	loadedSize int

	// CyclesPerByte sets the pretend execution cost (default 10).
	CyclesPerByte uint64
}

// NewEmulator returns a booted emulator.
func NewEmulator() *Emulator {
	return &Emulator{mem: make(map[uint32]byte), state: leon.StateIdle, CyclesPerByte: 10}
}

// State implements LEONControl.
func (e *Emulator) State() leon.State { return e.state }

// LastResult implements LEONControl.
func (e *Emulator) LastResult() leon.RunResult { return e.last }

// LoadProgram implements LEONControl.
func (e *Emulator) LoadProgram(addr uint32, image []byte) error {
	if addr < leon.MailboxEnd {
		return fmt.Errorf("fpx: emulator: load address %#x overlaps the mailbox", addr)
	}
	for i, b := range image {
		e.mem[addr+uint32(i)] = b
	}
	e.loaded = addr
	e.loadedSize = len(image)
	return nil
}

// Execute implements LEONControl: the emulator "runs" the program by
// charging a deterministic cycle count proportional to its size.
func (e *Emulator) Execute(entry uint32, maxCycles uint64) (leon.RunResult, error) {
	if e.loaded == 0 {
		return leon.RunResult{}, fmt.Errorf("fpx: emulator: nothing loaded")
	}
	if entry < e.loaded || entry >= e.loaded+uint32(e.loadedSize) {
		return leon.RunResult{}, fmt.Errorf("fpx: emulator: entry %#x outside loaded image", entry)
	}
	res := leon.RunResult{
		Cycles:       uint64(e.loadedSize) * e.CyclesPerByte,
		Instructions: uint64(e.loadedSize / 4),
	}
	if maxCycles != 0 && res.Cycles > maxCycles {
		res.Faulted = true
		res.Cycles = maxCycles
	}
	e.last = res
	if res.Faulted {
		e.state = leon.StateFault
	} else {
		e.state = leon.StateDone
	}
	return res, nil
}

// ReadMemory implements LEONControl.
func (e *Emulator) ReadMemory(addr uint32, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("fpx: emulator: negative length")
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = e.mem[addr+uint32(i)]
	}
	return out, nil
}

// WriteMemory implements LEONControl.
func (e *Emulator) WriteMemory(addr uint32, p []byte) error {
	for i, b := range p {
		e.mem[addr+uint32(i)] = b
	}
	return nil
}
