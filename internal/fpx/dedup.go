package fpx

import "liquidarch/internal/netproto"

// DedupWindow is how many completed exchanges a platform remembers per
// board. The §2.6 client retransmits over a UDP path that drops,
// duplicates and reorders; any retransmitted request whose (source,
// command, sequence) matches a remembered exchange is answered with
// the cached response — re-acked, never re-applied. 128 exchanges is
// more than a full client retry budget across every in-flight command
// a single board can queue.
const DedupWindow = 128

// dedupKey identifies one request/response exchange: the peer that
// issued it (empty for the direct payload path), the command and the
// client-stamped exchange sequence number from the v3 header.
type dedupKey struct {
	src string
	cmd uint8
	seq uint16
}

// dedupCache is a fixed-size exchange memory with FIFO eviction. It is
// owned by the board's single worker goroutine (like the platform's
// load-reassembly state) and therefore needs no locking.
type dedupCache struct {
	m    map[dedupKey][]netproto.Packet
	ring []dedupKey
	next int
}

func newDedupCache() *dedupCache {
	return &dedupCache{
		m:    make(map[dedupKey][]netproto.Packet, DedupWindow),
		ring: make([]dedupKey, DedupWindow),
	}
}

// lookup returns the cached responses for an exchange, if remembered.
func (d *dedupCache) lookup(k dedupKey) ([]netproto.Packet, bool) {
	resp, ok := d.m[k]
	return resp, ok
}

// remember stores the responses for an exchange, evicting the oldest
// remembered exchange once the window is full.
func (d *dedupCache) remember(k dedupKey, resp []netproto.Packet) {
	if _, ok := d.m[k]; ok {
		d.m[k] = resp
		return
	}
	old := d.ring[d.next]
	if old != (dedupKey{}) {
		delete(d.m, old)
	}
	d.ring[d.next] = k
	d.next = (d.next + 1) % len(d.ring)
	d.m[k] = resp
}
