package fpx

import (
	"encoding/json"
	"sync"
	"testing"

	"liquidarch/internal/leon"
	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
)

// TestPlatformMetricsCounted exercises the CPP counters: frames in and
// out, per-command dispatch, and the out-of-order load-chunk counter.
func TestPlatformMetricsCounted(t *testing.T) {
	p := newLEONPlatform(t)

	// Two status commands.
	sendCmd(t, p, netproto.Packet{Command: netproto.CmdStatus})
	sendCmd(t, p, netproto.Packet{Command: netproto.CmdStatus})

	// A 3-chunk load delivered 0, 2, 1: chunk 2 arrives when only one
	// chunk has been seen and chunk 1 when two have, so both count as
	// out of order (sequence number != chunks seen so far).
	image := make([]byte, 2*netproto.MaxChunkData+50)
	obj := testProgram(t)
	copy(image, obj.Code)
	chunks := netproto.ChunkImage(leon.DefaultLoadAddr, image)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	for _, idx := range []int{0, 2, 1} {
		sendCmd(t, p, netproto.Packet{Command: netproto.CmdLoadProgram, Body: chunks[idx].Marshal()})
	}

	snap := p.Metrics().Snapshot()
	if got := snap.Counter(`liquid_fpx_commands_total{cmd="status"}`); got != 2 {
		t.Errorf(`commands{status} = %d, want 2`, got)
	}
	if got := snap.Counter(`liquid_fpx_commands_total{cmd="load"}`); got != 3 {
		t.Errorf(`commands{load} = %d, want 3`, got)
	}
	if got := snap.Counter("liquid_fpx_load_chunks_total"); got != 3 {
		t.Errorf("load_chunks = %d, want 3", got)
	}
	if got := snap.Counter("liquid_fpx_load_chunks_out_of_order_total"); got != 2 {
		t.Errorf("out_of_order = %d, want 2", got)
	}
	if got := snap.Counter("liquid_fpx_loads_completed_total"); got != 1 {
		t.Errorf("loads_completed = %d, want 1", got)
	}
	if got := snap.Counter("liquid_fpx_frames_in_total"); got != 5 {
		t.Errorf("frames_in = %d, want 5", got)
	}
	if got := snap.Counter("liquid_fpx_frames_out_total"); got != 5 {
		t.Errorf("frames_out = %d, want 5", got)
	}

	// The legacy Stats struct still agrees with the registry.
	if st := p.Stats(); st.FramesIn != 5 || st.CommandsHandled != 5 {
		t.Errorf("legacy stats diverged: %+v", st)
	}
}

// TestStatsRaceFree hammers the legacy Stats() snapshot while the
// handle path runs — the fields are atomic now, so this is clean
// under -race (boards run concurrently behind the multi-board node).
func TestStatsRaceFree(t *testing.T) {
	em := NewEmulator()
	p := New(em, fpxIP, fpxPort)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = p.Stats()
				}
			}
		}()
	}
	pkt := netproto.Packet{Command: netproto.CmdStatus}
	frame := netproto.BuildFrame(hostIP, fpxIP, hostPort, fpxPort, pkt.Marshal())
	for i := 0; i < 500; i++ {
		if _, err := p.HandleFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if got := p.Stats().CommandsHandled; got != 500 {
		t.Errorf("CommandsHandled = %d, want 500", got)
	}
}

// TestStatsCommand checks CmdStats returns the registry snapshot as
// JSON in-band.
func TestStatsCommand(t *testing.T) {
	p := newLEONPlatform(t)
	sendCmd(t, p, netproto.Packet{Command: netproto.CmdStatus})
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStats})
	if len(resps) != 1 {
		t.Fatalf("responses = %d", len(resps))
	}
	if resps[0].Command != netproto.CmdStats|netproto.RespFlag {
		t.Fatalf("response command = %#02x", resps[0].Command)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(resps[0].Body, &snap); err != nil {
		t.Fatalf("stats body is not a snapshot: %v", err)
	}
	if got := snap.Counter(`liquid_fpx_commands_total{cmd="status"}`); got != 1 {
		t.Errorf(`snapshot commands{status} = %d, want 1`, got)
	}
	// The stats command itself was dispatched before the snapshot.
	if got := snap.Counter(`liquid_fpx_commands_total{cmd="stats"}`); got != 1 {
		t.Errorf(`snapshot commands{stats} = %d, want 1`, got)
	}
}

// TestCommandName locks the label vocabulary used across the metrics.
func TestCommandName(t *testing.T) {
	cases := map[uint8]string{
		netproto.CmdStatus:                    "status",
		netproto.CmdLoadProgram:               "load",
		netproto.CmdStartLEON:                 "start",
		netproto.CmdReadMemory:                "readmem",
		netproto.CmdWriteMemory:               "writemem",
		netproto.CmdReconfigure:               "reconfigure",
		netproto.CmdGetConfig:                 "getconfig",
		netproto.CmdTraceReport:               "trace",
		netproto.CmdStats:                     "stats",
		netproto.CmdResult:                    "result",
		netproto.CmdStartSync:                 "startsync",
		netproto.CmdStats | netproto.RespFlag: "stats", // RespFlag stripped
		netproto.CmdError:                     "error",
		0x42:                                  "unknown",
	}
	for cmd, want := range cases {
		if got := netproto.CommandName(cmd); got != want {
			t.Errorf("CommandName(%#02x) = %q, want %q", cmd, got, want)
		}
	}
}
