package fpx

import (
	"bytes"
	"strings"
	"testing"

	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
)

// TestEmulatorWriteMemory: bytes written through the control surface
// read back identically (the emulator's memory is a plain byte array).
func TestEmulatorWriteMemory(t *testing.T) {
	em := NewEmulator()
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := em.WriteMemory(leon.DefaultLoadAddr, data); err != nil {
		t.Fatal(err)
	}
	got, err := em.ReadMemory(leon.DefaultLoadAddr, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %x, want %x", got, data)
	}
}

// TestPlatformAccessors covers the observability plumbing a node wires
// at boot: the event log always exists, tracing and flight recording
// are nil until attached, and LoadedAddr tracks the last full load.
func TestPlatformAccessors(t *testing.T) {
	p := New(NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	if p.Events() == nil {
		t.Error("platform has no event log")
	}
	if p.Tracer() != nil {
		t.Error("tracer attached before EnableTracing")
	}
	if p.FlightRecorder() != nil {
		t.Error("flight recorder attached before SetFlightRecorder")
	}
	if p.LoadedAddr() != 0 {
		t.Errorf("LoadedAddr = %#x before any load", p.LoadedAddr())
	}
	img := make([]byte, 64)
	for _, ch := range netproto.ChunkImage(leon.DefaultLoadAddr, img) {
		p.HandlePayload(netproto.Packet{Command: netproto.CmdLoadProgram, Body: ch.Marshal()}.Marshal())
	}
	if p.LoadedAddr() != leon.DefaultLoadAddr {
		t.Errorf("LoadedAddr = %#x after load, want %#x", p.LoadedAddr(), leon.DefaultLoadAddr)
	}
}

// TestUnwiredReconfigSurface: a platform without the core's
// reconfiguration functions rejects the rev-6 conversation cleanly and
// reports itself hold-incapable to the server layer.
func TestUnwiredReconfigSurface(t *testing.T) {
	p := New(NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	if p.NotifyReconfig() {
		t.Error("NotifyReconfig fired with no hook installed")
	}
	fired := false
	if p.SetReconfigWakeHook(func() { fired = true }) {
		t.Error("emulator platform claims asynchronous reconfiguration support")
	}
	if !p.NotifyReconfig() || !fired {
		t.Error("installed wake hook did not fire")
	}
	if p.ReconfigInFlight() {
		t.Error("unwired platform reports a reconfiguration in flight")
	}
	for _, cmd := range []uint8{netproto.CmdReconfigStatus, netproto.CmdWaitReconfig, netproto.CmdGetConfig, netproto.CmdTraceReport} {
		resps := p.HandlePayload(netproto.Packet{Command: cmd}.Marshal())
		if len(resps) != 1 || resps[0].Command != netproto.CmdError {
			t.Errorf("unwired %s answered %+v, want CmdError", netproto.CommandName(cmd), resps)
		}
	}
}

// TestCommandRevRejectsNewerCommands: an emulated older command set
// rejects commands from later protocol generations as unknown, and
// CmdRev resolves 0 to the latest revision.
func TestCommandRevRejectsNewerCommands(t *testing.T) {
	p := New(NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	if p.CmdRev() != LatestCommandRev {
		t.Errorf("CmdRev() = %d with CommandRev unset, want %d", p.CmdRev(), LatestCommandRev)
	}
	p.CommandRev = 4
	if p.CmdRev() != 4 {
		t.Errorf("CmdRev() = %d, want 4", p.CmdRev())
	}
	resps := p.HandlePayload(netproto.Packet{Command: netproto.CmdWaitResult, Body: netproto.WaitResultReq{HoldMs: 1}.Marshal()}.Marshal())
	if len(resps) != 1 || resps[0].Command != netproto.CmdError {
		t.Fatalf("rev-4 platform answered CmdWaitResult with %+v, want CmdError", resps)
	}
	er, err := netproto.ParseErrorResp(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Msg, "unknown command") {
		t.Errorf("rejection message %q does not read as an unknown command", er.Msg)
	}
	// A rev-4 command still works on the rev-4 platform.
	resps = p.HandlePayload(netproto.Packet{Command: netproto.CmdStatus}.Marshal())
	if len(resps) != 1 || resps[0].Command != netproto.CmdStatus|netproto.RespFlag {
		t.Errorf("rev-4 platform rejected CmdStatus: %+v", resps)
	}
}
