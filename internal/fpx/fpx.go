// Package fpx models the FPX side of Fig. 3: the layered Internet
// protocol wrappers that parse and format raw IPv4/UDP frames, the
// Control Packet Processor (CPP) that routes LEON command packets to
// the LEON controller, and the packet generator that transmits
// response frames. It also provides the hardware Emulator the paper's
// control software used for debugging before the bitfile existed.
package fpx

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"

	"liquidarch/internal/leon"
	"liquidarch/internal/metrics"
	"liquidarch/internal/metrics/eventlog"
	"liquidarch/internal/netproto"
	"liquidarch/internal/tracing"
)

// LEONControl is what the CPP needs from the LEON controller; it is
// satisfied by *leon.Controller, *leon.AsyncController and by the
// Emulator. The §3.1 handoff is asynchronous: Start writes the entry
// address and returns as soon as the processor acknowledges, State and
// Cycles are poll-safe while the run is in flight, and CollectResult
// blocks until the run completes (for a self-driving implementation
// like the AsyncController) or drives it to completion (for the bare
// Controller). Execute remains the blocking convenience used by the
// CmdStartSync compatibility path.
type LEONControl interface {
	State() leon.State
	LoadProgram(addr uint32, image []byte) error
	Start(entry uint32, maxCycles uint64) error
	Cycles() uint64
	CollectResult() (leon.RunResult, error)
	Execute(entry uint32, maxCycles uint64) (leon.RunResult, error)
	ReadMemory(addr uint32, n int) ([]byte, error)
	WriteMemory(addr uint32, p []byte) error
	LastResult() leon.RunResult
}

// MaxReadLength caps a single Read Memory response.
const MaxReadLength = 64 << 10

// Stats counts platform activity. It predates the metrics registry and
// is kept for compatibility; the registry (Platform.Metrics) carries
// the same counts plus per-command and error detail. The fields are
// mutated with atomic adds on the handle path and snapshotted with
// atomic loads by Stats(), so reading them while boards run
// concurrently is race-free.
type Stats struct {
	FramesIn        uint64
	FramesOut       uint64
	BadFrames       uint64
	PassedThrough   uint64 // non-Liquid traffic the CPP ignored
	ChunksReceived  uint64
	LoadsCompleted  uint64
	CommandsHandled uint64
}

// platformMetrics are the registry instruments behind Stats.
type platformMetrics struct {
	framesIn      *metrics.Counter
	framesOut     *metrics.Counter
	badFrames     *metrics.Counter
	passedThrough *metrics.Counter
	commands      *metrics.CounterVec
	protoErrors   *metrics.CounterVec
	chunks        *metrics.Counter
	chunksOOO     *metrics.Counter
	chunksApplied *metrics.Counter
	chunksDup     *metrics.Counter
	loadsDone     *metrics.Counter
	dupSuppressed *metrics.Counter
}

func newPlatformMetrics(r *metrics.Registry) platformMetrics {
	return platformMetrics{
		framesIn:      r.Counter("liquid_fpx_frames_in_total", "Raw frames entering the protocol wrappers."),
		framesOut:     r.Counter("liquid_fpx_frames_out_total", "Response frames emitted by the packet generator."),
		badFrames:     r.Counter("liquid_fpx_frames_bad_total", "Frames the IPv4/UDP wrappers rejected (checksum, truncation)."),
		passedThrough: r.Counter("liquid_fpx_frames_passthrough_total", "Non-Liquid traffic the CPP passed through untouched."),
		commands:      r.CounterVec("liquid_fpx_commands_total", "Control commands dispatched by the CPP.", "cmd"),
		protoErrors:   r.CounterVec("liquid_fpx_protocol_errors_total", "Commands answered with CmdError.", "cmd"),
		chunks:        r.Counter("liquid_fpx_load_chunks_total", "Program-load chunks received."),
		chunksOOO:     r.Counter("liquid_fpx_load_chunks_out_of_order_total", "Load chunks that arrived out of sequence order."),
		chunksApplied: r.Counter("liquid_fpx_load_chunks_applied_total", "First-time load chunks copied into the reassembly buffer."),
		chunksDup:     r.Counter("liquid_fpx_load_chunks_dup_total", "Retransmitted load chunks re-acked without re-applying."),
		loadsDone:     r.Counter("liquid_fpx_loads_completed_total", "Fully reassembled program loads handed to leon_ctrl."),
		dupSuppressed: r.Counter("liquid_fpx_dup_requests_total", "Retransmitted exchanges answered from the dedup window (re-acked, never re-applied)."),
	}
}

// Platform is one FPX node hosting the Liquid processor.
type Platform struct {
	ctrl LEONControl

	// IP and Port identify the node; the packet generator swaps them
	// into response frames.
	IP   [4]byte
	Port uint16

	// ReconfigureFn, when set, implements CmdReconfigure (wired up by
	// the core liquid system, which can rebuild the SoC).
	ReconfigureFn func(spec []byte) error
	// ReconfigureCtxFn is the trace-aware variant; when set it takes
	// precedence over ReconfigureFn and receives the exchange's trace
	// context so the reconfiguration path (cache hit/miss,
	// partial/full rebuild) appears in the span tree.
	ReconfigureCtxFn func(tc tracing.Ctx, spec []byte) error
	// ReconfigAsyncFn is the rev-6 non-blocking CmdReconfigure handler;
	// when set it takes precedence over both blocking variants. It
	// returns the ticket status the ack compresses into RunReport spare
	// fields instead of holding the board through synthesis.
	ReconfigAsyncFn func(tc tracing.Ctx, spec []byte) (netproto.ReconfigStatusResp, error)
	// ReconfigStatusFn answers CmdReconfigStatus and CmdWaitReconfig.
	// Calling it also pumps: a synthesis that completed while the board
	// was busy is swapped in here, on the dispatching goroutine — the
	// board worker when a server mounts this platform, which is the
	// goroutine SoC mutation is confined to.
	ReconfigStatusFn func() netproto.ReconfigStatusResp
	// ConfigFn, when set, implements CmdGetConfig.
	ConfigFn func() []byte
	// TraceFn, when set, implements CmdTraceReport — the paper's
	// "streaming of instrumented traces to the Trace Analyzer" over
	// the network, summarized.
	TraceFn func() ([]byte, error)

	// CommandRev caps the command-set revision this platform answers
	// (0 = latest). Lower revs restore era semantics for
	// compatibility testing: commands that did not exist yet are
	// rejected as unknown, rev<2 blocks inside CmdStartLEON (the
	// pre-async control plane), rev<3 has no dedup window, rev<6
	// reconfigures synchronously. Set before serving traffic.
	CommandRev uint8
	// DedupDisabled skips the at-most-once dedup window entirely — a
	// deliberate protocol-bug knob so the model-based simulation
	// tests can prove that a missing dedup re-ack is caught.
	DedupDisabled bool

	load       *loadState
	loadedAddr uint32
	dedup      *dedupCache
	stats      Stats
	runDone    func() // completion hook, re-installed across SetControl
	// reconfigWake, when set, is invoked (from the core's ticket
	// watcher goroutine) whenever an asynchronous reconfiguration
	// finishes synthesis — the server's cue to pump the swap and wake
	// parked CmdWaitReconfig exchanges. Must not block.
	reconfigWake func()

	reg    *metrics.Registry
	events *eventlog.Log
	m      platformMetrics

	// tracer, when non-nil, records one span tree per exchange. The
	// handle path is structured so a nil tracer adds zero allocations.
	tracer *tracing.Collector
	// flight, when non-nil, dumps the recent traces + eventlog tail
	// whenever this platform answers with CmdError.
	flight *tracing.FlightRecorder
}

type loadState struct {
	addr     uint32
	total    uint16
	buf      []byte
	received []bool
	count    int
}

// New builds a platform around a LEON controller. The platform owns
// the node's telemetry: one metrics.Registry and one structured event
// log shared by every layer serving this node (core system, server).
func New(ctrl LEONControl, ip [4]byte, port uint16) *Platform {
	reg := metrics.NewRegistry()
	reg.Info("liquid_build_info",
		"Build and protocol identity of this node (constant 1).",
		metrics.Label{Key: "go_version", Value: runtime.Version()},
		metrics.Label{Key: "protocol", Value: strconv.Itoa(int(netproto.VersionTrace))},
	)
	return &Platform{
		ctrl:   ctrl,
		IP:     ip,
		Port:   port,
		dedup:  newDedupCache(),
		reg:    reg,
		events: eventlog.New(256),
		m:      newPlatformMetrics(reg),
	}
}

// Metrics returns the node's telemetry registry. Layers above and
// below (server, core) register their instruments here so one snapshot
// covers the whole node.
func (p *Platform) Metrics() *metrics.Registry { return p.reg }

// Events returns the node's structured event log.
func (p *Platform) Events() *eventlog.Log { return p.events }

// EnableTracing attaches a span collector to the platform's handle
// path: every exchange records a span tree under the trace id the
// request carried (v4 header), or under a server-assigned id for
// v1–v3 clients. A multi-board node passes the same collector to all
// its platforms so the node exports one merged timeline.
func (p *Platform) EnableTracing(col *tracing.Collector) { p.tracer = col }

// Tracer returns the attached span collector (nil when tracing is
// disabled).
func (p *Platform) Tracer() *tracing.Collector { return p.tracer }

// SetFlightRecorder attaches the crash-dump flight recorder: whenever
// this platform answers with CmdError, the recorder dumps the recent
// completed traces plus the eventlog tail to a timestamped file
// (rate-limited).
func (p *Platform) SetFlightRecorder(fr *tracing.FlightRecorder) { p.flight = fr }

// FlightRecorder returns the attached flight recorder (nil when none).
func (p *Platform) FlightRecorder() *tracing.FlightRecorder { return p.flight }

// SetControl swaps the LEON controller behind the platform — the
// moment after a new bitfile is loaded into the RAD and the rebuilt
// processor comes out of reset.
func (p *Platform) SetControl(ctrl LEONControl) {
	p.ctrl = ctrl
	p.load = nil
	p.loadedAddr = 0
	p.dedup = newDedupCache()
	// Keep the completion hook across the swap: the server's waiter
	// registry must still be woken by runs on the rebuilt processor.
	if p.runDone != nil {
		if n, ok := ctrl.(RunDoneNotifier); ok {
			n.SetRunDoneHook(p.runDone)
		}
	}
}

// Control returns the LEON controller currently behind the platform.
// The server's worker uses it to decide whether a CmdWaitResult
// exchange can be parked (the board must be observably running).
func (p *Platform) Control() LEONControl { return p.ctrl }

// RunDoneNotifier is the optional LEONControl extension a controller
// implements to support server-held result waits: fn is invoked every
// time a run completes. *leon.AsyncController implements it.
type RunDoneNotifier interface {
	SetRunDoneHook(fn func())
}

// SetRunDoneHook asks the platform's controller to invoke fn whenever
// a run completes, and reports whether the controller supports
// completion notification. The hook survives SetControl: it is
// re-installed on the replacement controller (when that controller is
// a notifier too). fn must not block.
func (p *Platform) SetRunDoneHook(fn func()) bool {
	p.runDone = fn
	if n, ok := p.ctrl.(RunDoneNotifier); ok {
		n.SetRunDoneHook(fn)
		return true
	}
	return false
}

// SetReconfigWakeHook asks the platform to invoke fn whenever an
// asynchronous reconfiguration finishes its synthesis, and reports
// whether this platform supports asynchronous reconfiguration at all
// (the core wired ReconfigStatusFn). fn must not block; it typically
// just signals the server's board worker, which then pumps the swap by
// dispatching through ReconfigStatusFn on its own goroutine.
func (p *Platform) SetReconfigWakeHook(fn func()) bool {
	p.reconfigWake = fn
	return p.ReconfigStatusFn != nil
}

// NotifyReconfig fires the reconfigure wake hook, reporting whether
// one was installed. The core's ticket watcher calls it on synthesis
// completion; when it returns false (no server mounted) the watcher
// pumps the swap itself.
func (p *Platform) NotifyReconfig() bool {
	if p.reconfigWake == nil {
		return false
	}
	p.reconfigWake()
	return true
}

// ReconfigInFlight reports whether an asynchronous reconfiguration is
// still non-terminal — the condition under which the server may park a
// CmdWaitReconfig exchange. It polls through ReconfigStatusFn, so the
// check itself pumps any swap that is ready to land.
func (p *Platform) ReconfigInFlight() bool {
	if p.ReconfigStatusFn == nil {
		return false
	}
	st := p.ReconfigStatusFn()
	return st.State != netproto.ReconfigNone && !st.Terminal()
}

// Stats returns a snapshot of the activity counters, taken with
// atomic loads so it is safe against a concurrently running handle
// path.
func (p *Platform) Stats() Stats {
	return Stats{
		FramesIn:        atomic.LoadUint64(&p.stats.FramesIn),
		FramesOut:       atomic.LoadUint64(&p.stats.FramesOut),
		BadFrames:       atomic.LoadUint64(&p.stats.BadFrames),
		PassedThrough:   atomic.LoadUint64(&p.stats.PassedThrough),
		ChunksReceived:  atomic.LoadUint64(&p.stats.ChunksReceived),
		LoadsCompleted:  atomic.LoadUint64(&p.stats.LoadsCompleted),
		CommandsHandled: atomic.LoadUint64(&p.stats.CommandsHandled),
	}
}

// LoadedAddr returns the address of the last fully reassembled load.
func (p *Platform) LoadedAddr() uint32 { return p.loadedAddr }

// HandleFrame is the full hardware path: the protocol wrappers parse
// the raw IPv4/UDP frame, the CPP routes Liquid control packets, and
// the packet generator formats zero or more response frames addressed
// back to the sender. Non-Liquid or wrong-port traffic produces no
// responses (it would pass through to the switch fabric).
func (p *Platform) HandleFrame(frame []byte) ([][]byte, error) {
	return p.HandleFrameTraced(frame, 0)
}

// HandleFrameTraced is HandleFrame with a pre-assigned trace id for
// requests that carry none: the OS-socket server mints the id at
// dispatch time (so its queue-wait span and the platform's handle
// spans land in the same trace) and passes it down here. assigned 0
// means "no pre-assigned id" — the platform mints its own when
// tracing is enabled.
func (p *Platform) HandleFrameTraced(frame []byte, assigned uint64) ([][]byte, error) {
	atomic.AddUint64(&p.stats.FramesIn, 1)
	p.m.framesIn.Inc()
	f, err := netproto.ParseFrame(frame)
	if err != nil {
		atomic.AddUint64(&p.stats.BadFrames, 1)
		p.m.badFrames.Inc()
		p.events.Warnf("wrappers rejected frame", "err", err)
		return nil, fmt.Errorf("fpx: wrappers rejected frame: %w", err)
	}
	if f.UDP.DstPort != p.Port || !netproto.IsLiquidPacket(f.Payload) {
		atomic.AddUint64(&p.stats.PassedThrough, 1)
		p.m.passedThrough.Inc()
		return nil, nil
	}
	src := fmt.Sprintf("%d.%d.%d.%d:%d", f.IP.Src[0], f.IP.Src[1], f.IP.Src[2], f.IP.Src[3], f.UDP.SrcPort)
	resps := p.HandlePayloadFromTraced(src, f.Payload, assigned)
	frames := make([][]byte, len(resps))
	for i, r := range resps {
		frames[i] = netproto.BuildFrame(p.IP, f.IP.Src, p.Port, f.UDP.SrcPort, r.Marshal())
		atomic.AddUint64(&p.stats.FramesOut, 1)
		p.m.framesOut.Inc()
	}
	return frames, nil
}

// HandlePayload runs the CPP dispatch on one control-packet payload
// and returns the response packets, without a peer identity (exchange
// dedup then keys on command+seq alone). Prefer HandlePayloadFrom when
// the caller knows who sent the packet.
func (p *Platform) HandlePayload(payload []byte) []netproto.Packet {
	return p.HandlePayloadFrom("", payload)
}

// HandlePayloadFrom runs the CPP dispatch on one control-packet
// payload from the peer identified by src ("ip:port"; "" when
// unknown) and returns the response packets. This is the entry point
// for the OS-socket server, which receives payloads with the IP/UDP
// headers already stripped by the kernel.
//
// Requests carrying a v3 exchange sequence number pass through the
// per-board dedup window: a retransmission of an exchange this board
// already answered — the client's ack was lost or delayed — is
// answered with the cached responses instead of being re-applied, so
// a duplicated start never double-starts and a duplicated write never
// double-writes. Every response echoes the request's board and seq so
// the client can discard strays.
func (p *Platform) HandlePayloadFrom(src string, payload []byte) []netproto.Packet {
	return p.HandlePayloadFromTraced(src, payload, 0)
}

// HandlePayloadFromTraced is HandlePayloadFrom with a pre-assigned
// trace id (see HandleFrameTraced). Every added tracing step below is
// gated on p.tracer so the disabled path stays allocation-identical to
// the pre-tracing handle path.
func (p *Platform) HandlePayloadFromTraced(src string, payload []byte, assigned uint64) []netproto.Packet {
	pkt, err := netproto.ParsePacket(payload)
	if err != nil {
		resps := []netproto.Packet{p.errResp(netproto.CmdStatus, err)}
		p.flightOnError(assigned)
		return resps
	}
	atomic.AddUint64(&p.stats.CommandsHandled, 1)
	p.m.commands.With(netproto.CommandName(pkt.Command)).Inc()

	// Resolve the exchange's trace and open the handle span. CmdTraces
	// itself is never traced: fetching a trace must not grow it.
	var (
		hspan tracing.SpanHandle
		hctx  tracing.Ctx
		tid   uint64
	)
	if p.tracer != nil && pkt.Command != netproto.CmdTraces {
		tid = pkt.TraceID
		if tid == 0 {
			tid = assigned
		}
		if tid == 0 {
			tid = p.tracer.NewTraceID()
		}
		hspan = p.tracer.Trace(tid).Start("handle:" + netproto.CommandName(pkt.Command))
		hctx = hspan.Ctx()
	}

	var key dedupKey
	useDedup := pkt.HasSeq && p.CmdRev() >= 3 && !p.DedupDisabled
	if useDedup {
		key = dedupKey{src: src, cmd: pkt.Command, seq: pkt.Seq}
		if resp, ok := p.dedup.lookup(key); ok {
			p.m.dupSuppressed.Inc()
			p.events.Debugf("dedup re-ack", "src", src, "cmd", netproto.CommandName(pkt.Command), "seq", pkt.Seq)
			if hspan.On() {
				hspan.EndAttrs(tracing.A("board", strconv.Itoa(int(pkt.Board))), tracing.A("dedup", "hit"))
			}
			return resp
		}
	}
	resps := p.dispatch(pkt, hctx)
	isErr := false
	for i := range resps {
		resps[i].Board = pkt.Board
		resps[i].Seq = pkt.Seq
		resps[i].HasSeq = pkt.HasSeq
		resps[i].TraceID = pkt.TraceID
		resps[i].HasTrace = pkt.HasTrace
		if resps[i].Command == netproto.CmdError {
			isErr = true
		}
	}
	if useDedup {
		p.dedup.remember(key, resps)
	}
	if hspan.On() {
		attr := tracing.A("ok", "true")
		if isErr {
			attr = tracing.A("error", "true")
		}
		hspan.EndAttrs(tracing.A("board", strconv.Itoa(int(pkt.Board))), attr)
	}
	if isErr {
		p.flightOnError(tid)
	}
	return resps
}

// flightOnError finishes the erroring exchange's trace (so the dump
// contains it) and writes a flight-recorder file. No-op without an
// attached recorder; rate-limited by the recorder itself.
func (p *Platform) flightOnError(traceID uint64) {
	if p.flight == nil {
		return
	}
	if traceID != 0 {
		p.tracer.Finish(traceID)
	}
	if path, err := p.flight.Dump("cmd_error"); err != nil {
		p.events.Warnf("flight dump failed", "err", err)
	} else if path != "" {
		p.events.Infof("flight record dumped", "path", path, "reason", "cmd_error")
	}
}

// dispatch routes one parsed control packet to its handler. tc is the
// exchange's trace context (disabled when tracing is off); only the
// handlers that hand work to lower layers thread it further.
func (p *Platform) dispatch(pkt netproto.Packet, tc tracing.Ctx) []netproto.Packet {
	rev := p.CmdRev()
	if minCmdRev(pkt.Command) > rev {
		// This command did not exist at the emulated revision; answer
		// exactly like an unrouted opcode so clients downgrade.
		return []netproto.Packet{p.errResp(pkt.Command, fmt.Errorf("unknown command %#02x", pkt.Command))}
	}
	if pkt.Command == netproto.CmdStartLEON && rev < 2 {
		// Pre-async era: the start exchange blocks until the run
		// completes and the ack is the final report.
		return []netproto.Packet{p.startSyncAs(netproto.CmdStartLEON, pkt.Body, tc)}
	}
	switch pkt.Command {
	case netproto.CmdStatus:
		return []netproto.Packet{p.status()}
	case netproto.CmdLoadProgram:
		return []netproto.Packet{p.loadChunk(pkt.Body)}
	case netproto.CmdStartLEON:
		return []netproto.Packet{p.start(pkt.Body, tc)}
	case netproto.CmdReadMemory:
		return []netproto.Packet{p.readMem(pkt.Body)}
	case netproto.CmdWriteMemory:
		return []netproto.Packet{p.writeMem(pkt.Body)}
	case netproto.CmdReconfigure:
		return []netproto.Packet{p.reconfigure(pkt.Body, tc)}
	case netproto.CmdGetConfig:
		return []netproto.Packet{p.getConfig()}
	case netproto.CmdTraceReport:
		return []netproto.Packet{p.traceReport()}
	case netproto.CmdStats:
		return []netproto.Packet{p.statsReport()}
	case netproto.CmdResult:
		return []netproto.Packet{p.result()}
	case netproto.CmdStartSync:
		return []netproto.Packet{p.startSync(pkt.Body, tc)}
	case netproto.CmdTraces:
		return []netproto.Packet{p.tracesCmd(pkt.Body)}
	case netproto.CmdWaitResult:
		return []netproto.Packet{p.waitResult()}
	case netproto.CmdReconfigStatus:
		return []netproto.Packet{p.reconfigStatus(netproto.CmdReconfigStatus)}
	case netproto.CmdWaitReconfig:
		return []netproto.Packet{p.reconfigStatus(netproto.CmdWaitReconfig)}
	default:
		return []netproto.Packet{p.errResp(pkt.Command, fmt.Errorf("unknown command %#02x", pkt.Command))}
	}
}

// LatestCommandRev is the newest command-set revision this platform
// implements: rev 6, asynchronous reconfiguration.
const LatestCommandRev = 6

// CmdRev resolves the emulated command-set revision (0 = latest).
func (p *Platform) CmdRev() uint8 {
	if p.CommandRev == 0 {
		return LatestCommandRev
	}
	return p.CommandRev
}

// minCmdRev maps each command to the command-set revision that
// introduced it (rev 1 for the original blocking control plane).
func minCmdRev(cmd uint8) uint8 {
	switch cmd {
	case netproto.CmdResult, netproto.CmdStartSync:
		return 2 // asynchronous control plane
	case netproto.CmdTraces:
		return 4 // exchange tracing
	case netproto.CmdWaitResult:
		return 5 // server-held result wait
	case netproto.CmdReconfigStatus, netproto.CmdWaitReconfig:
		return 6 // reconfiguration as a service
	default:
		return 1
	}
}

// CtxStarter is the optional LEONControl extension a trace-aware
// controller implements: Start with the exchange's trace context, so
// the asynchronous run's spans (run, slices) nest under the trace that
// started it.
type CtxStarter interface {
	StartCtx(tc tracing.Ctx, entry uint32, maxCycles uint64) error
}

// CtxExecutor is the blocking counterpart of CtxStarter for the
// CmdStartSync compatibility path.
type CtxExecutor interface {
	ExecuteCtx(tc tracing.Ctx, entry uint32, maxCycles uint64) (leon.RunResult, error)
}

// tracesCmd answers CmdTraces with completed exchange traces as JSON.
// An 8-byte body selects (and force-completes) one trace id; an empty
// body returns the whole completed ring. Oldest traces are dropped
// until the JSON fits a single UDP response.
func (p *Platform) tracesCmd(body []byte) netproto.Packet {
	if p.tracer == nil {
		return p.errResp(netproto.CmdTraces, fmt.Errorf("tracing not enabled on this platform"))
	}
	req, err := netproto.ParseTracesReq(body)
	if err != nil {
		return p.errResp(netproto.CmdTraces, err)
	}
	var tds []tracing.TraceData
	if req.TraceID != 0 {
		tds = p.tracer.TakeTrace(req.TraceID)
	} else {
		tds = p.tracer.Completed()
	}
	if tds == nil {
		tds = []tracing.TraceData{}
	}
	data, err := json.Marshal(tds)
	for err == nil && len(data) > netproto.MaxTracesJSON && len(tds) > 0 {
		tds = tds[1:]
		data, err = json.Marshal(tds)
	}
	if err != nil {
		return p.errResp(netproto.CmdTraces, err)
	}
	return netproto.Packet{
		Command: netproto.CmdTraces | netproto.RespFlag,
		Body:    netproto.TracesResp{Status: netproto.StatusOK, JSON: data}.Marshal(),
	}
}

// errResp formats a CmdError response, counting and logging the
// failure.
func (p *Platform) errResp(cmd uint8, err error) netproto.Packet {
	p.m.protoErrors.With(netproto.CommandName(cmd)).Inc()
	p.events.Warnf("command failed", "cmd", netproto.CommandName(cmd), "err", err)
	return netproto.Packet{
		Command: netproto.CmdError,
		Body:    netproto.ErrorResp{Code: cmd, Msg: err.Error()}.Marshal(),
	}
}

// statsReport answers CmdStats with the node-wide telemetry snapshot as
// JSON — the in-band twin of the HTTP /statusz endpoint, so a fleet
// controller can account for every node over the same UDP control
// channel it already speaks.
func (p *Platform) statsReport() netproto.Packet {
	body, err := json.Marshal(p.reg.Snapshot())
	if err != nil {
		return p.errResp(netproto.CmdStats, err)
	}
	return netproto.Packet{Command: netproto.CmdStats | netproto.RespFlag, Body: body}
}

func (p *Platform) status() netproto.Packet {
	last := p.ctrl.LastResult()
	st := netproto.StatusResp{
		State:      uint8(p.ctrl.State()),
		BootOK:     p.ctrl.State() != leon.StateReset,
		LoadedAddr: p.loadedAddr,
		CurCycles:  p.ctrl.Cycles(),
		Last:       runReport(last),
	}
	return netproto.Packet{Command: netproto.CmdStatus | netproto.RespFlag, Body: st.Marshal()}
}

func runReport(r leon.RunResult) netproto.RunReport {
	rep := netproto.RunReport{
		Status:       netproto.StatusOK,
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		TT:           r.TT,
		FaultPC:      r.FaultPC,
	}
	if r.Faulted {
		rep.Status = netproto.StatusFault
	}
	return rep
}

// nextGap returns the lowest sequence number not yet received, or the
// total once every chunk is in — the resume point a re-acked duplicate
// advertises to an interrupted client.
func (ls *loadState) nextGap() int {
	for i, got := range ls.received {
		if !got {
			return i
		}
	}
	return int(ls.total)
}

// loadAck formats the progress-carrying acknowledgement for a chunk.
func loadAck(status uint8, ls *loadState) netproto.Packet {
	return netproto.Packet{
		Command: netproto.CmdLoadProgram | netproto.RespFlag,
		Body:    netproto.LoadAckReport(status, ls.count, ls.nextGap()).Marshal(),
	}
}

// loadChunk reassembles multi-packet program loads. UDP does not
// guarantee order, so chunks carry sequence numbers (§2.6); a
// duplicate chunk — a retransmission, or an interrupted client
// restarting its load — is re-acked with the current reassembly
// progress but never re-applied, and a chunk for a different image
// restarts the reassembly. Every ack carries (received, nextSeq) so a
// resuming client can skip the chunks this board already holds.
func (p *Platform) loadChunk(body []byte) netproto.Packet {
	c, err := netproto.ParseLoadChunk(body)
	if err != nil {
		return p.errResp(netproto.CmdLoadProgram, err)
	}
	atomic.AddUint64(&p.stats.ChunksReceived, 1)
	p.m.chunks.Inc()
	if p.load == nil || p.load.addr != c.Addr || p.load.total != c.Total || len(p.load.buf) != int(c.TotalLen) {
		p.load = &loadState{
			addr:     c.Addr,
			total:    c.Total,
			buf:      make([]byte, c.TotalLen),
			received: make([]bool, c.Total),
		}
	}
	ls := p.load
	if ls.received[c.Seq] {
		// Re-ack, never re-apply: the chunk is already in the buffer.
		p.m.chunksDup.Inc()
		p.events.Debugf("duplicate load chunk re-acked", "seq", c.Seq, "next", ls.nextGap())
		return loadAck(netproto.StatusPending, ls)
	}
	// A first-time chunk whose sequence number differs from the number
	// of distinct chunks seen so far was reordered in flight (UDP
	// guarantees neither delivery nor order, §2.6).
	if int(c.Seq) != ls.count {
		p.m.chunksOOO.Inc()
	}
	copy(ls.buf[c.Offset:], c.Data)
	ls.received[c.Seq] = true
	ls.count++
	p.m.chunksApplied.Inc()
	if ls.count < int(ls.total) {
		return loadAck(netproto.StatusPending, ls)
	}
	// Complete: hand to the LEON controller.
	if err := p.ctrl.LoadProgram(ls.addr, ls.buf); err != nil {
		p.load = nil
		return p.errResp(netproto.CmdLoadProgram, err)
	}
	p.loadedAddr = ls.addr
	atomic.AddUint64(&p.stats.LoadsCompleted, 1)
	p.m.loadsDone.Inc()
	p.events.Infof("program load complete", "addr", fmt.Sprintf("%#x", ls.addr), "bytes", len(ls.buf))
	ack := loadAck(netproto.StatusOK, ls)
	p.load = nil
	return ack
}

// start implements the paper's true §3.1 handoff: CmdStartLEON writes
// the entry address and acks immediately with StatusRunning — the
// "Start LEON" acknowledgement — while the run proceeds on the board.
// The client observes completion by polling CmdStatus and fetches the
// final RunResult with CmdResult.
func (p *Platform) start(body []byte, tc tracing.Ctx) netproto.Packet {
	entry, maxCycles, errPkt := p.parseStart(netproto.CmdStartLEON, body)
	if errPkt != nil {
		return *errPkt
	}
	// Idempotent under retransmission: if the run is already in flight
	// (the start ack was lost and the UDP client retried), acknowledge
	// again instead of failing with "cannot start in state running".
	if p.ctrl.State() == leon.StateRunning {
		rep := netproto.RunReport{Status: netproto.StatusRunning, Cycles: p.ctrl.Cycles()}
		return netproto.Packet{Command: netproto.CmdStartLEON | netproto.RespFlag, Body: rep.Marshal()}
	}
	var err error
	if cs, ok := p.ctrl.(CtxStarter); ok && tc.On() {
		err = cs.StartCtx(tc, entry, maxCycles)
	} else {
		err = p.ctrl.Start(entry, maxCycles)
	}
	if err != nil {
		return p.errResp(netproto.CmdStartLEON, err)
	}
	rep := netproto.RunReport{Status: netproto.StatusRunning, Cycles: p.ctrl.Cycles()}
	return netproto.Packet{Command: netproto.CmdStartLEON | netproto.RespFlag, Body: rep.Marshal()}
}

// startSync is the blocking compatibility path (CmdStartSync): start
// the program AND run it to completion in one round trip, answering
// with the final RunReport exactly as the pre-async CmdStartLEON did.
// It occupies the board's command queue for the whole run.
func (p *Platform) startSync(body []byte, tc tracing.Ctx) netproto.Packet {
	return p.startSyncAs(netproto.CmdStartSync, body, tc)
}

// startSyncAs is the blocking start body shared by CmdStartSync and
// the rev-1 era CmdStartLEON (which blocked before the asynchronous
// control plane existed).
func (p *Platform) startSyncAs(cmd uint8, body []byte, tc tracing.Ctx) netproto.Packet {
	entry, maxCycles, errPkt := p.parseStart(cmd, body)
	if errPkt != nil {
		return *errPkt
	}
	var (
		res leon.RunResult
		err error
	)
	if ce, ok := p.ctrl.(CtxExecutor); ok && tc.On() {
		res, err = ce.ExecuteCtx(tc, entry, maxCycles)
	} else {
		res, err = p.ctrl.Execute(entry, maxCycles)
	}
	rep := runReport(res)
	if err != nil && !res.Faulted {
		return p.errResp(cmd, err)
	}
	if err != nil {
		rep.Status = netproto.StatusFault
	}
	return netproto.Packet{Command: cmd | netproto.RespFlag, Body: rep.Marshal()}
}

// parseStart decodes a StartReq body and resolves the entry address
// (0 means "address of the last load").
func (p *Platform) parseStart(cmd uint8, body []byte) (entry uint32, maxCycles uint64, errPkt *netproto.Packet) {
	req, err := netproto.ParseStartReq(body)
	if err != nil {
		pkt := p.errResp(cmd, err)
		return 0, 0, &pkt
	}
	entry = req.Entry
	if entry == 0 {
		entry = p.loadedAddr
	}
	if entry == 0 {
		pkt := p.errResp(cmd, fmt.Errorf("no program loaded"))
		return 0, 0, &pkt
	}
	return entry, req.MaxCycles, nil
}

// result answers CmdResult. While the run is still in flight it
// reports StatusRunning with the live cycle counter (the client keeps
// polling — the handler never blocks the board's queue on execution);
// once the run has completed it returns the final RunReport. Repeated
// collects are idempotent, as the §2.6 UDP client may retransmit.
func (p *Platform) result() netproto.Packet {
	return p.resultPacket(netproto.CmdResult)
}

// waitResult answers CmdWaitResult with the same report CmdResult
// produces. The holding itself happens a layer above: the server's
// board worker parks the exchange while the run is in flight and
// replays it through this handler at wake time, so by the time the
// dispatch runs the answer is final (or the hold expired and the
// StatusRunning reply tells the client to ask again). A platform
// driven without a parking server — tests feeding HandlePayload
// directly — simply answers immediately, which is the HoldMs=0
// behavior.
func (p *Platform) waitResult() netproto.Packet {
	return p.resultPacket(netproto.CmdWaitResult)
}

// resultPacket is the shared CmdResult/CmdWaitResult body: live
// StatusRunning while in flight, the final (idempotent) RunReport
// afterwards.
func (p *Platform) resultPacket(cmd uint8) netproto.Packet {
	if p.ctrl.State() == leon.StateRunning {
		rep := netproto.RunReport{Status: netproto.StatusRunning, Cycles: p.ctrl.Cycles()}
		return netproto.Packet{Command: cmd | netproto.RespFlag, Body: rep.Marshal()}
	}
	res, err := p.ctrl.CollectResult()
	rep := runReport(res)
	if err != nil && !res.Faulted {
		return p.errResp(cmd, err)
	}
	if err != nil {
		rep.Status = netproto.StatusFault
	}
	return netproto.Packet{Command: cmd | netproto.RespFlag, Body: rep.Marshal()}
}

func (p *Platform) readMem(body []byte) netproto.Packet {
	req, err := netproto.ParseMemReq(body)
	if err != nil {
		return p.errResp(netproto.CmdReadMemory, err)
	}
	if req.Length > MaxReadLength {
		return p.errResp(netproto.CmdReadMemory, fmt.Errorf("read length %d exceeds %d", req.Length, MaxReadLength))
	}
	data, err := p.ctrl.ReadMemory(req.Addr, int(req.Length))
	if err != nil {
		return p.errResp(netproto.CmdReadMemory, err)
	}
	resp := netproto.MemResp{Status: netproto.StatusOK, Addr: req.Addr, Data: data}
	return netproto.Packet{Command: netproto.CmdReadMemory | netproto.RespFlag, Body: resp.Marshal()}
}

func (p *Platform) writeMem(body []byte) netproto.Packet {
	req, err := netproto.ParseMemReq(body)
	if err != nil {
		return p.errResp(netproto.CmdWriteMemory, err)
	}
	if err := p.ctrl.WriteMemory(req.Addr, req.Data); err != nil {
		return p.errResp(netproto.CmdWriteMemory, err)
	}
	resp := netproto.MemResp{Status: netproto.StatusOK, Addr: req.Addr}
	return netproto.Packet{Command: netproto.CmdWriteMemory | netproto.RespFlag, Body: resp.Marshal()}
}

func (p *Platform) reconfigure(body []byte, tc tracing.Ctx) netproto.Packet {
	if p.ReconfigAsyncFn != nil && p.CmdRev() >= 6 {
		st, err := p.ReconfigAsyncFn(tc, body)
		if err != nil {
			return p.errResp(netproto.CmdReconfigure, err)
		}
		if st.State == netproto.ReconfigApplied {
			// The swap already happened inside the ack (cache hit on an
			// idle board) — a new bitfile clears loaded state. Deferred
			// swaps do NOT clear it: the SRAM/SDRAM contents are copied
			// across, and a later ack must not clobber loads made while
			// synthesis was still running.
			p.loadedAddr = 0
		}
		return netproto.Packet{
			Command: netproto.CmdReconfigure | netproto.RespFlag,
			Body:    netproto.ReconfigAckReport(st).Marshal(),
		}
	}
	if p.ReconfigureCtxFn == nil && p.ReconfigureFn == nil {
		return p.errResp(netproto.CmdReconfigure, fmt.Errorf("reconfiguration not wired on this platform"))
	}
	var err error
	if p.ReconfigureCtxFn != nil {
		err = p.ReconfigureCtxFn(tc, body)
	} else {
		err = p.ReconfigureFn(body)
	}
	if err != nil {
		return p.errResp(netproto.CmdReconfigure, err)
	}
	p.loadedAddr = 0 // a new bitfile clears loaded state
	return netproto.Packet{
		Command: netproto.CmdReconfigure | netproto.RespFlag,
		Body:    netproto.RunReport{Status: netproto.StatusOK}.Marshal(),
	}
}

// reconfigStatus answers CmdReconfigStatus and CmdWaitReconfig. Both
// report (and pump) through ReconfigStatusFn; the hold semantics of
// CmdWaitReconfig live a layer above, in the server's board worker,
// which parks the exchange while the reconfiguration is in flight and
// replays it through this handler at wake time — exactly the
// CmdWaitResult arrangement.
func (p *Platform) reconfigStatus(cmd uint8) netproto.Packet {
	if p.ReconfigStatusFn == nil {
		return p.errResp(cmd, fmt.Errorf("asynchronous reconfiguration not wired on this platform"))
	}
	// Deliberately no loadedAddr clearing here: Applied is sticky in
	// the status (it reports the last terminal outcome), so a late poll
	// must not clobber loads made after the swap. The swap copies the
	// memories across anyway, so the loaded image survives it.
	return netproto.Packet{Command: cmd | netproto.RespFlag, Body: p.ReconfigStatusFn().Marshal()}
}

func (p *Platform) getConfig() netproto.Packet {
	if p.ConfigFn == nil {
		return p.errResp(netproto.CmdGetConfig, fmt.Errorf("configuration reporting not wired"))
	}
	return netproto.Packet{Command: netproto.CmdGetConfig | netproto.RespFlag, Body: p.ConfigFn()}
}

func (p *Platform) traceReport() netproto.Packet {
	if p.TraceFn == nil {
		return p.errResp(netproto.CmdTraceReport, fmt.Errorf("trace streaming not wired on this platform"))
	}
	body, err := p.TraceFn()
	if err != nil {
		return p.errResp(netproto.CmdTraceReport, err)
	}
	return netproto.Packet{Command: netproto.CmdTraceReport | netproto.RespFlag, Body: body}
}
