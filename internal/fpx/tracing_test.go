package fpx

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
	"liquidarch/internal/tracing"
)

// benchPlatform is newLEONPlatform for benchmarks.
func benchPlatform(b *testing.B) *Platform {
	b.Helper()
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		b.Fatal(err)
	}
	a := leon.NewAsyncController(ctrl)
	b.Cleanup(a.Close)
	return New(a, fpxIP, fpxPort)
}

// TestV4TraceEcho pins the trace-context propagation contract: a v4
// request's trace id is echoed on the response, and v1–v3 requests
// keep getting v1–v3 responses (no trace fields).
func TestV4TraceEcho(t *testing.T) {
	p := newLEONPlatform(t)

	resps := sendCmd(t, p, netproto.Packet{
		Command: netproto.CmdStatus,
		Seq:     7, HasSeq: true,
		TraceID: 0xDEADBEEFCAFE, HasTrace: true,
	})
	if len(resps) != 1 {
		t.Fatalf("%d responses", len(resps))
	}
	if !resps[0].HasTrace || resps[0].TraceID != 0xDEADBEEFCAFE {
		t.Errorf("trace id not echoed: %+v", resps[0])
	}
	if !resps[0].HasSeq || resps[0].Seq != 7 {
		t.Errorf("seq not echoed alongside trace: %+v", resps[0])
	}

	resps = sendCmd(t, p, netproto.Packet{Command: netproto.CmdStatus, Seq: 8, HasSeq: true})
	if resps[0].HasTrace {
		t.Errorf("v3 request got a v4 response: %+v", resps[0])
	}
}

// TestTracesCommand exercises the CmdTraces fetch path: a traced
// exchange's spans come back as JSON TraceData, and the fetch removes
// the trace from the ring.
func TestTracesCommand(t *testing.T) {
	p := newLEONPlatform(t)
	col := tracing.New("server")
	p.EnableTracing(col)

	id := col.NewTraceID()
	sendCmd(t, p, netproto.Packet{Command: netproto.CmdStatus, Seq: 1, HasSeq: true, TraceID: id, HasTrace: true})

	fetch := netproto.Packet{Command: netproto.CmdTraces, Seq: 2, HasSeq: true,
		Body: netproto.TracesReq{TraceID: id}.Marshal()}
	resps := sendCmd(t, p, fetch)
	tr, err := netproto.ParseTracesResp(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Status != netproto.StatusOK {
		t.Fatalf("traces status %d", tr.Status)
	}
	var tds []tracing.TraceData
	if err := json.Unmarshal(tr.JSON, &tds); err != nil {
		t.Fatalf("traces payload: %v", err)
	}
	if len(tds) != 1 || tds[0].ID != id {
		t.Fatalf("want 1 trace with id %#x, got %+v", id, tds)
	}
	found := false
	for _, sp := range tds[0].Spans {
		if sp.Name == "handle:status" {
			found = true
		}
		if strings.HasPrefix(sp.Name, "handle:traces") {
			t.Errorf("the traces fetch traced itself: %+v", sp)
		}
	}
	if !found {
		t.Errorf("no handle:status span in %+v", tds[0].Spans)
	}

	// The fetch removed the trace: a second fetch returns none.
	fetch.Seq = 3
	resps = sendCmd(t, p, fetch)
	tr, _ = netproto.ParseTracesResp(resps[0].Body)
	_ = json.Unmarshal(tr.JSON, &tds)
	if len(tds) != 0 {
		t.Errorf("trace still present after take: %+v", tds)
	}
}

// TestFlightDumpOnCmdError verifies the crash-dump path: a command
// that fails with CmdError finishes its trace and writes a flight
// dump containing it.
func TestFlightDumpOnCmdError(t *testing.T) {
	p := newLEONPlatform(t)
	col := tracing.New("server")
	p.EnableTracing(col)
	dir := t.TempDir()
	fr := &tracing.FlightRecorder{Collectors: []*tracing.Collector{col}, Dir: dir}
	p.SetFlightRecorder(fr)

	// Start without a loaded program → CmdError.
	id := col.NewTraceID()
	req := netproto.StartReq{Entry: 0, MaxCycles: 10}
	resps := sendCmd(t, p, netproto.Packet{Command: netproto.CmdStartLEON, Seq: 1, HasSeq: true,
		TraceID: id, HasTrace: true, Body: req.Marshal()})
	if resps[0].Command != netproto.CmdError {
		t.Fatalf("expected CmdError, got %#x", resps[0].Command)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("flight dumps = %d, want 1", fr.Dumps())
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("dump dir: %v entries, err %v", len(ents), err)
	}
	data, err := os.ReadFile(dir + "/" + ents[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	var dump tracing.FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if dump.Reason != "cmd_error" {
		t.Errorf("dump reason %q", dump.Reason)
	}
	found := false
	for _, td := range dump.Traces {
		if td.ID == id {
			found = true
		}
	}
	if !found {
		t.Errorf("failed exchange's trace %#x missing from dump (%d traces)", id, len(dump.Traces))
	}
}

// TestDisabledTracingAddsZeroAllocs enforces the hot-path guarantee:
// with no tracer attached, handling a v4 packet (trace id present)
// allocates exactly as much as handling the same v3 packet — the
// tracing plumbing costs nothing when it is off.
func TestDisabledTracingAddsZeroAllocs(t *testing.T) {
	p := newLEONPlatform(t)

	v3 := netproto.Packet{Command: netproto.CmdStatus, Seq: 1, HasSeq: true}.Marshal()
	v4 := netproto.Packet{Command: netproto.CmdStatus, Seq: 1, HasSeq: true,
		TraceID: 0xABCD, HasTrace: true}.Marshal()

	// Same seq every run: the dedup cache answers from memory, so the
	// measurement isolates the parse/trace/echo plumbing.
	base := testing.AllocsPerRun(200, func() {
		if out := p.HandlePayloadFrom("10.0.0.1:41000", v3); len(out) != 1 {
			t.Fatal("no response")
		}
	})
	traced := testing.AllocsPerRun(200, func() {
		if out := p.HandlePayloadFrom("10.0.0.1:41000", v4); len(out) != 1 {
			t.Fatal("no response")
		}
	})
	if traced > base {
		t.Errorf("disabled tracing allocates: v4=%v allocs/op, v3=%v", traced, base)
	}
}

// BenchmarkHandleStatusV4Untraced is the benchmark-enforced view of
// the same guarantee (run with -benchmem; allocs/op must match the v3
// figure).
func BenchmarkHandleStatusV4Untraced(b *testing.B) {
	p := benchPlatform(b)
	raw := netproto.Packet{Command: netproto.CmdStatus, Seq: 1, HasSeq: true,
		TraceID: 0xABCD, HasTrace: true}.Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.HandlePayloadFrom("10.0.0.1:41000", raw)
	}
}

// BenchmarkHandleStatusV3 is the baseline for the benchmark above.
func BenchmarkHandleStatusV3(b *testing.B) {
	p := benchPlatform(b)
	raw := netproto.Packet{Command: netproto.CmdStatus, Seq: 1, HasSeq: true}.Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.HandlePayloadFrom("10.0.0.1:41000", raw)
	}
}
