package fpx

import (
	"fmt"

	"liquidarch/internal/netproto"
)

// Switch models the four-port NID switch of Fig. 2: the network
// interface device that routes cells between the line card and the
// RAD(s). Here it routes IPv4/UDP frames by destination address to up
// to four attached platforms; traffic for unknown destinations passes
// through (toward the line card), as the FPX forwards non-local flows.
type Switch struct {
	nodes map[[4]byte]*Platform
	stats SwitchStats
}

// SwitchStats counts switch activity.
type SwitchStats struct {
	Delivered uint64 // frames handed to an attached RAD
	Forwarded uint64 // frames for non-local destinations
	Bad       uint64 // unparseable frames
}

// NIDPorts is the hardware port count of the FPX NID.
const NIDPorts = 4

// NewSwitch returns an empty switch.
func NewSwitch() *Switch {
	return &Switch{nodes: make(map[[4]byte]*Platform)}
}

// Attach connects a platform to a switch port. At most NIDPorts
// platforms, with distinct IPs, can be attached.
func (s *Switch) Attach(p *Platform) error {
	if len(s.nodes) >= NIDPorts {
		return fmt.Errorf("fpx: NID switch has only %d ports", NIDPorts)
	}
	if _, dup := s.nodes[p.IP]; dup {
		return fmt.Errorf("fpx: switch already has a node at %d.%d.%d.%d",
			p.IP[0], p.IP[1], p.IP[2], p.IP[3])
	}
	s.nodes[p.IP] = p
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Switch) Stats() SwitchStats { return s.stats }

// Route delivers a frame: frames addressed to an attached platform run
// through that platform's wrappers and CPP, and the responses come
// back toward the ingress port. Frames for other destinations are
// returned as forwarded (second return value true) so the caller can
// put them on the line card.
func (s *Switch) Route(frame []byte) (responses [][]byte, forwarded bool, err error) {
	f, err := netproto.ParseFrame(frame)
	if err != nil {
		s.stats.Bad++
		return nil, false, fmt.Errorf("fpx: switch: %w", err)
	}
	node, ok := s.nodes[f.IP.Dst]
	if !ok {
		s.stats.Forwarded++
		return nil, true, nil
	}
	s.stats.Delivered++
	out, err := node.HandleFrame(frame)
	return out, false, err
}
