package liquidarch

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end via `go run` and
// checks for its landmark output line — the walkthroughs in examples/
// must never rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "sum(1..100) = 5050"},
		{"./examples/cachesweep", "best wall-clock point"},
		{"./examples/remote", "faster)"},
		{"./examples/autotune", "speedup:"},
		{"./examples/multinode", "ran concurrently"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
