// Remote demonstrates the paper's headline capability: the platform
// "can be instantiated, configured, and executed via the Internet".
// It starts a reconfiguration server on loopback UDP, then drives it
// with the control client: status, multi-packet program load, start,
// read memory — and finally reconfigures the processor over the wire
// and re-runs the same binary on the new microarchitecture.
package main

import (
	"fmt"
	"log"

	"liquidarch/internal/client"
	"liquidarch/internal/core"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
	"liquidarch/internal/server"
	"liquidarch/internal/synth"
)

const program = `
int count[1024];
int result;
int main() {
    int i;
    int address;
    int x = 0;
    for (i = 0; i < 262144; i = i + 32) {
        address = i % 1024;
        x = x + count[address];
    }
    result = x + 42;
    return result;
}`

func main() {
	// Server side: a liquid node with a deliberately small data cache.
	cfg := leon.DefaultConfig()
	cfg.DCache.SizeBytes = 1 << 10
	sys, err := core.New(cfg, core.Options{Synth: synth.Options{BitstreamBytes: 4096}})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(sys.Platform(), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("reconfiguration server on %s\n", srv.Addr())

	// Client side: the paper's Fig. 4 control software.
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	st, err := c.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LEON status: %v (boot ok: %v)\n", leon.State(st.State), st.BootOK)

	// Compile locally, upload in sequence-numbered UDP chunks.
	asmText, err := lcc.Compile(program, lcc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	img, err := link.Build(asmText, link.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.LoadProgram(img.Origin, img.Code); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d bytes at %#x over UDP\n", len(img.Code), img.Origin)

	rep, err := c.Start(img.Entry, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run on 1KB D$:  %d cycles\n", rep.Cycles)

	// Liquid step: swap the data cache to 8 KB over the network.
	if err := c.Reconfigure([]byte(`{"dcache_bytes": 8192}`)); err != nil {
		log.Fatal(err)
	}
	blob, err := c.GetConfig()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfigured; active config: %s\n", blob)

	// The board memories survived the swap: start the SAME binary
	// without reloading it.
	rep2, err := c.Start(img.Entry, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run on 8KB D$:  %d cycles (%.2fx faster)\n",
		rep2.Cycles, float64(rep.Cycles)/float64(rep2.Cycles))

	// Read the result, as the paper's Read Memory command does.
	data, err := c.ReadMemory(img.ExitValueAddr(), 4)
	if err != nil {
		log.Fatal(err)
	}
	v := uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3])
	fmt.Printf("result read from %#x: %d\n", img.ExitValueAddr(), v)
}
