// Autotune runs the complete application-reconfigurability loop of
// the paper's Fig. 1: execute under the trace analyzer, let the
// architecture generator explore the cache parameter space against the
// recorded trace, pre-generate the winning image into the
// reconfiguration cache, swap it in, and re-measure.
package main

import (
	"fmt"
	"log"
	"os"

	"liquidarch/internal/archgen"
	"liquidarch/internal/bench"
	"liquidarch/internal/cliutil"
	"liquidarch/internal/core"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/synth"
)

func main() {
	// Start from a deliberately poor point: 1 KB data cache.
	cfg := leon.DefaultConfig()
	cfg.DCache.SizeBytes = 1 << 10
	sys, err := core.New(cfg, core.Options{Synth: synth.Options{BitstreamBytes: 4096}})
	if err != nil {
		log.Fatal(err)
	}
	img, err := sys.CompileC(bench.Fig7Source, lcc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the Fig. 7 kernel on a 1 KB data cache with the trace analyzer attached ...")
	rep, err := sys.AutoTune(img, archgen.PaperSpace(cfg), 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\narchitecture generator ranking (trace-predicted):")
	table := [][]string{{"D$ size", "predicted miss ratio", "predicted ms", "slices", "fMax"}}
	for _, c := range rep.Candidates {
		table = append(table, []string{
			fmt.Sprintf("%dKB", c.Config.DCache.SizeBytes>>10),
			fmt.Sprintf("%.4f", c.MissRatio),
			fmt.Sprintf("%.3f", c.PredictedSeconds*1e3),
			fmt.Sprintf("%d", c.Util.Slices),
			fmt.Sprintf("%.1f MHz", c.Util.FMaxMHz),
		})
	}
	cliutil.Table(os.Stdout, table)

	fmt.Printf("\nselected configuration: D$ = %d KB (cache hit: %v)\n",
		rep.TunedCfg.DCache.SizeBytes>>10, rep.CacheHit)
	fmt.Printf("baseline: %10d cycles on %d KB\n",
		rep.Baseline.Cycles, rep.BaselineCfg.DCache.SizeBytes>>10)
	fmt.Printf("tuned:    %10d cycles on %d KB\n",
		rep.Tuned.Cycles, rep.TunedCfg.DCache.SizeBytes>>10)
	fmt.Printf("speedup:  %.2fx in cycles, %.2fx in wall-clock (fMax-adjusted)\n",
		rep.Speedup, rep.WallSpeedup)
	fmt.Printf("reconfiguration cache now holds %d images\n",
		sys.Manager().Cache().Len())
}
