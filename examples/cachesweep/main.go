// Cachesweep reproduces the paper's evaluation (§4, Figures 7-9) end
// to end: the Fig. 7 array-access program is compiled once and run
// under data-cache sizes from 1 KB to 16 KB at a constant 32-byte line
// and 1 KB instruction cache, with the hardware cycle counter and the
// data-cache miss counters reported for each point.
package main

import (
	"fmt"
	"log"
	"os"

	"liquidarch/internal/bench"
	"liquidarch/internal/cliutil"
)

func main() {
	fmt.Println("Fig. 7 kernel: for (i = 0; i < 1048576; i += 32) x += count[i % 1024];")
	fmt.Println("sweeping data cache 1-16 KB (32 B lines, 1 KB I$) ...")
	fmt.Println()

	rows, err := bench.Fig8Sweep(0)
	if err != nil {
		log.Fatal(err)
	}
	table := [][]string{{"Data Cache Size", "Number of clock cycles", "D$ misses", "ms @ fMax"}}
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%dKB", r.DCacheBytes>>10),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", r.Misses),
			fmt.Sprintf("%.3f", r.Millis),
		})
	}
	cliutil.Table(os.Stdout, table)

	fmt.Println()
	fmt.Println("The stride-32 index pattern touches 32 lines spread over 4 KB:")
	fmt.Println("below 4 KB they conflict on every access; at 4 KB and above only")
	fmt.Println("the cold fill misses remain — the shape of the paper's Figure 9.")
	base, best := rows[0], rows[0]
	for _, r := range rows[1:] {
		if r.Millis < best.Millis {
			best = r
		}
	}
	fmt.Printf("\nbest wall-clock point: %dKB (%.3f ms, %.2fx over 1KB)\n",
		best.DCacheBytes>>10, best.Millis, base.Millis/best.Millis)
	fmt.Println("note: 8/16 KB lower the synthesized clock, so 4 KB wins overall —")
	fmt.Println("the trade-off the liquid architecture exists to navigate.")
}
