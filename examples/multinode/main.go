// Multinode puts two Liquid processor nodes behind the FPX's four-port
// NID switch (Fig. 2) and runs the same binary on both, each node
// instantiated with a different microarchitecture — the "many points
// in a configuration space" picture of §1 made physical: one chassis,
// several liquid processors, frames routed by destination IP.
package main

import (
	"fmt"
	"log"

	"liquidarch/internal/core"
	"liquidarch/internal/fpx"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
	"liquidarch/internal/netproto"
	"liquidarch/internal/synth"
)

const program = `
int count[1024];
int result;
int main() {
    int i;
    int address;
    int x = 0;
    for (i = 0; i < 262144; i = i + 32) {
        address = i % 1024;
        x = x + count[address];
    }
    result = x;
    return x;
}`

var hostIP = [4]byte{10, 0, 0, 1}

func main() {
	sw := fpx.NewSwitch()

	// Node A: small data cache. Node B: the tuned 8 KB point.
	nodes := map[string][4]byte{}
	for _, n := range []struct {
		name   string
		ip     [4]byte
		dcache int
	}{
		{"node-a (1KB D$)", [4]byte{10, 0, 0, 2}, 1 << 10},
		{"node-b (8KB D$)", [4]byte{10, 0, 0, 3}, 8 << 10},
	} {
		cfg := leon.DefaultConfig()
		cfg.DCache.SizeBytes = n.dcache
		sys, err := core.New(cfg, core.Options{
			IP:    n.ip,
			Synth: synth.Options{BitstreamBytes: 4096},
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sw.Attach(sys.Platform()); err != nil {
			log.Fatal(err)
		}
		nodes[n.name] = n.ip
		fmt.Printf("attached %s at %d.%d.%d.%d\n", n.name, n.ip[0], n.ip[1], n.ip[2], n.ip[3])
	}

	// Build the program once; upload and run it on each node by
	// addressing frames through the switch.
	asmText, err := lcc.Compile(program, lcc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	img, err := link.Build(asmText, link.Options{})
	if err != nil {
		log.Fatal(err)
	}

	send := func(dst [4]byte, pkt netproto.Packet) netproto.Packet {
		frame := netproto.BuildFrame(hostIP, dst, 40000, 5001, pkt.Marshal())
		resps, forwarded, err := sw.Route(frame)
		if err != nil || forwarded || len(resps) != 1 {
			log.Fatalf("route: %v forwarded=%v n=%d", err, forwarded, len(resps))
		}
		f, err := netproto.ParseFrame(resps[0])
		if err != nil {
			log.Fatal(err)
		}
		out, err := netproto.ParsePacket(f.Payload)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}

	fmt.Println()
	for name, ip := range nodes {
		for _, ch := range netproto.ChunkImage(img.Origin, img.Code) {
			send(ip, netproto.Packet{Command: netproto.CmdLoadProgram, Body: ch.Marshal()})
		}
		resp := send(ip, netproto.Packet{Command: netproto.CmdStartLEON, Body: netproto.StartReq{}.Marshal()})
		rep, err := netproto.ParseRunReport(resp.Body)
		if err != nil || rep.Status != netproto.StatusOK {
			log.Fatalf("%s: %v %+v", name, err, rep)
		}
		fmt.Printf("%-16s %10d cycles\n", name, rep.Cycles)
	}
	st := sw.Stats()
	fmt.Printf("\nswitch: %d frames delivered, %d forwarded\n", st.Delivered, st.Forwarded)
}
