// Multinode hosts two Liquid processor boards behind one reconfiguration
// server — the multi-board FPX node of Fig. 2 — and drives both over
// real UDP with the asynchronous control plane. Each board is
// instantiated with a different microarchitecture (the "many points in
// a configuration space" picture of §1), the same binary is loaded on
// both with interleaved chunk streams, and both runs execute
// concurrently: start returns immediately, status polls watch the live
// cycle counters side by side, and the results are collected when each
// board finishes.
//
// Every exchange is traced end-to-end: each client mints one trace id,
// the server's queue/handle/run spans join it, and with -trace-out the
// merged timeline is validated and written as Chrome trace-event JSON
// (open it in chrome://tracing to see both boards' runs side by side).
//
// The boards share one reconfiguration manager, so the session also
// shows reconfiguration as a service: two further configurations are
// prewarmed onto the synthesis pool before the runs start, and after
// the results are in, board 0 is reconfigured to one of the prewarmed
// points — an immediate cache hit, no modelled tool hours — and reruns
// the same program on its new microarchitecture.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"liquidarch/internal/client"
	"liquidarch/internal/core"
	"liquidarch/internal/fpx"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
	"liquidarch/internal/netproto"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/server"
	"liquidarch/internal/synth"
	"liquidarch/internal/tracing"
)

// mustSpec marshals one reconfigure spec.
func mustSpec(s core.Spec) json.RawMessage {
	blob, err := json.Marshal(s)
	if err != nil {
		log.Fatal(err)
	}
	return blob
}

const program = `
int count[1024];
int result;
int main() {
    int i;
    int address;
    int x = 0;
    for (i = 0; i < 262144; i = i + 32) {
        address = i % 1024;
        x = x + count[address];
    }
    result = x;
    return x;
}`

func main() {
	traceOut := flag.String("trace-out", "", "write the merged exchange-trace timeline (Chrome JSON) here")
	flag.Parse()

	// Two boards, two microarchitectures: a small 1 KB data cache
	// against the tuned 8 KB point.
	boards := []struct {
		name   string
		dcache int
	}{
		{"board 0 (1KB D$)", 1 << 10},
		{"board 1 (8KB D$)", 8 << 10},
	}
	// One reconfiguration manager serves both boards: requests dedup
	// onto its synthesis pool and share one bitfile cache.
	mgr := reconfig.NewManager(reconfig.NewCache(0), synth.Options{BitstreamBytes: 4096})
	platforms := make([]*fpx.Platform, len(boards))
	for i, b := range boards {
		cfg := leon.DefaultConfig()
		cfg.DCache.SizeBytes = b.dcache
		sys, err := core.New(cfg, core.Options{
			IP:      [4]byte{10, 0, 0, byte(2 + i)},
			Manager: mgr,
		})
		if err != nil {
			log.Fatal(err)
		}
		platforms[i] = sys.Platform()
	}

	srv, err := server.NewNode("127.0.0.1:0", platforms...)
	if err != nil {
		log.Fatal(err)
	}
	serverCol := tracing.New("server")
	srv.EnableTracing(serverCol)
	clientCol := tracing.New("client")
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("node: %d boards on %s\n", srv.Boards(), srv.Addr())

	// Build the program once, then stream it to both boards at the same
	// time — the chunk sequences interleave arbitrarily on the node's
	// socket and are routed per board.
	asmText, err := lcc.Compile(program, lcc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	img, err := link.Build(asmText, link.Options{})
	if err != nil {
		log.Fatal(err)
	}

	clients := make([]*client.Client, len(boards))
	traceIDs := make([]uint64, len(boards))
	for i := range clients {
		c, err := client.Dial(srv.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		c.Board = uint8(i)
		// One trace per board's session: the client's op/exchange spans
		// and the server's queue/handle/run spans share the id.
		c.Tracer = clientCol
		c.TraceID = clientCol.NewTraceID()
		traceIDs[i] = c.TraceID
		clients[i] = c
	}

	// Prewarm two more configuration points on the shared synthesis
	// pool before any board needs them: the later reconfigure will be a
	// millisecond cache hit instead of a modelled tool-hour miss.
	prewarm := []json.RawMessage{
		mustSpec(core.Spec{DCacheBytes: 2 << 10}),
		mustSpec(core.Spec{DCacheBytes: 16 << 10}),
	}
	queued, err := clients[0].Prewarm(prewarm)
	if err != nil {
		log.Fatalf("prewarm: %v", err)
	}
	fmt.Printf("prewarm: %d configurations queued on the synthesis pool\n", queued)

	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			if err := c.LoadProgram(img.Origin, img.Code); err != nil {
				log.Fatalf("%s: load: %v", boards[i].name, err)
			}
		}(i, c)
	}
	wg.Wait()

	// Start both boards; each ack returns as soon as the handoff
	// completes, so the two runs are now in flight together.
	for i, c := range clients {
		if err := c.StartAsync(img.Entry, 0); err != nil {
			log.Fatalf("%s: start: %v", boards[i].name, err)
		}
	}

	// Watch them execute concurrently: the control plane answers status
	// polls mid-run without disturbing either board.
	fmt.Println()
	for poll := 0; poll < 3; poll++ {
		line := fmt.Sprintf("poll %d:", poll+1)
		for i, c := range clients {
			st, err := c.Status()
			if err != nil {
				log.Fatal(err)
			}
			line += fmt.Sprintf("  board %d %-7v %9d cycles", i, leon.State(st.State), st.CurCycles)
		}
		fmt.Println(line)
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Println()
	var firstCycles uint64
	for i, c := range clients {
		rep, err := c.WaitResult()
		if err != nil {
			log.Fatalf("%s: result: %v", boards[i].name, err)
		}
		if i == 0 {
			firstCycles = rep.Cycles
		}
		fmt.Printf("%-18s %10d cycles\n", boards[i].name, rep.Cycles)
	}

	// Mid-session reconfiguration: swap board 0 from its 1 KB D$ to the
	// prewarmed 16 KB point. The synthesis already ran on the pool, so
	// the swap is a cache hit and applies inside the ack; then the same
	// program (still loaded — partial swaps keep the memories) reruns on
	// the new microarchitecture.
	fmt.Println()
	st, err := clients[0].ReconfigureAsync(mustSpec(core.Spec{DCacheBytes: 16 << 10}))
	if err != nil {
		log.Fatalf("board 0: reconfigure: %v", err)
	}
	if !st.Terminal() {
		if st, err = clients[0].WaitReconfigure(context.Background()); err != nil {
			log.Fatalf("board 0: reconfigure wait: %v", err)
		}
	}
	if st.State != netproto.ReconfigApplied {
		log.Fatalf("board 0: reconfigure ended %+v", st)
	}
	fmt.Printf("board 0 reconfigured to 16KB D$ (cache hit: %v, partial: %v)\n", st.CacheHit, st.Partial)
	rep, err := clients[0].Start(img.Entry, 0)
	if err != nil {
		log.Fatalf("board 0: rerun: %v", err)
	}
	fmt.Printf("%-18s %10d cycles (was %d at 1KB)\n", "board 0 (16KB D$)", rep.Cycles, firstCycles)

	ms := mgr.Stats()
	fmt.Printf("\nsynthesis service: %d runs, %d coalesced, %d images cached\n",
		ms.SynthRuns, ms.Coalesced, mgr.Cache().Len())

	snap := srv.Metrics().Snapshot()
	fmt.Printf("\nnode: %d datagrams in, %d out — both boards ran concurrently\n",
		snap.Counter("liquid_server_datagrams_in_total"),
		snap.Counter("liquid_server_datagrams_out_total"))

	if *traceOut != "" {
		var groups [][]tracing.TraceData
		for _, id := range traceIDs {
			groups = append(groups, clientCol.TakeTrace(id), serverCol.TakeTrace(id))
		}
		data, err := tracing.ChromeJSON(groups...)
		if err != nil {
			log.Fatalf("trace export: %v", err)
		}
		// Self-validate before writing: the JSON must parse and every
		// child span must start within its parent.
		n, err := tracing.ValidateChrome(data)
		if err != nil {
			log.Fatalf("trace validation: %v", err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d spans across %d traces written to %s\n", n, len(traceIDs), *traceOut)
	}
}
