// Quickstart: instantiate a Liquid processor system, compile a C
// program, run it on the simulated FPX node and read the result back —
// the whole §2.6 flow in one file, without the network.
package main

import (
	"fmt"
	"log"
	"os"

	"liquidarch/internal/core"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/synth"
)

const program = `
// Sum the first 100 integers and print a marker on the UART.
int main() {
    int i;
    int sum = 0;
    for (i = 1; i <= 100; i++)
        sum += i;
    *(unsigned*)0x80000070 = 'O';   // UART data register
    *(unsigned*)0x80000070 = 'K';
    *(unsigned*)0x80000070 = '\n';
    return sum;
}`

func main() {
	// 1. Instantiate the base Liquid processor system (LEON2-like,
	//    1 KB I$, 4 KB D$, Fig. 10's 30 MHz image).
	sys, err := core.New(leon.DefaultConfig(), core.Options{
		UARTOut: os.Stdout,
		Synth:   synth.Options{BitstreamBytes: 4096},
	})
	if err != nil {
		log.Fatal(err)
	}
	util := sys.ActiveImage().Util
	fmt.Printf("instantiated: %d slices, %d BlockRAMs, %.0f MHz on %s\n",
		util.Slices, util.BlockRAMs, util.FMaxMHz, sys.ActiveImage().Device)

	// 2. Compile and link (gcc → GAS → LD → OBJCOPY of Fig. 4).
	img, err := sys.CompileC(program, lcc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d bytes at %#x\n", len(img.Code), img.Origin)

	// 3. Load through leon_ctrl, execute, count cycles (§3.1).
	res, err := sys.Run(img, 0)
	if err != nil {
		log.Fatal(err)
	}
	if res.Faulted {
		log.Fatalf("program faulted: tt=%#x at %#x", res.TT, res.FaultPC)
	}
	fmt.Printf("ran: %d cycles, %d instructions (%.3f ms at %.0f MHz)\n",
		res.Cycles, res.Instructions,
		float64(res.Cycles)/(util.FMaxMHz*1e3), util.FMaxMHz)

	// 4. Read the result from memory, like the paper's Read Memory
	//    command.
	sum, err := sys.ExitValue(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: sum(1..100) = %d\n", sum)
}
